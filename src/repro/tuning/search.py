"""DistributedSearch: heuristic per-variable precision tuning.

Reimplementation of the tuner the paper uses from the fpPrecisionTuning
suite (Ho et al., ASP-DAC'17).  Contract and structure follow the paper's
description (§II):

* input: a black-box program, a target output (the exact result), and a
  configuration assigning a precision-bit count to every variable;
* the tool runs the program many times, *heuristically searching the
  minimum precision for each variable* for a fixed input set;
* a second phase (see :mod:`repro.tuning.refine`) statistically joins the
  bindings found for different input sets.

The heuristic, per input set:

1. **Feasibility** -- verify the most precise configuration meets the
   SQNR target.
2. **Independent minima** -- for each variable, binary-search the minimum
   precision that still meets the target while all other variables stay
   at maximum precision.
3. **Greedy joint repair** -- start from the vector of independent minima
   (usually slightly too optimistic, since errors accumulate); while the
   joint configuration misses the target, grant one extra bit to the
   variable whose increment buys the most SQNR.

Dynamic range enters through the type system's interval map: a candidate
precision ``p`` is evaluated with ``exp_bits(p)`` exponent bits (see
:mod:`repro.tuning.mapping`), so a variable that saturates a narrow
exponent simply fails the constraint and is pushed to the next interval.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.core import BINARY64, FPFormat
from repro.telemetry import span as _span

from .mapping import MAX_PRECISION_BITS, TypeSystem
from .sqnr import sqnr_db
from .variables import TunableProgram, VarSpec, baseline_binding

__all__ = [
    "DistributedSearch",
    "TuningResult",
    "InfeasibleError",
    "BudgetExceededError",
]


class InfeasibleError(RuntimeError):
    """The program misses the SQNR target even at maximum precision."""


class BudgetExceededError(RuntimeError):
    """The search needed more program evaluations than its budget allows.

    Raised by :meth:`DistributedSearch.evaluate` the moment an *uncached*
    evaluation would exceed the evaluation budget (cache hits stay free),
    so a capped search fails loudly instead of silently overrunning.
    Budget-aware strategies (see :mod:`repro.tuning.anneal`) check
    :meth:`DistributedSearch.budget_remaining` and stop proposing moves
    before this fires.
    """


@dataclass
class TuningResult:
    """Outcome of a tuning run.

    ``precision`` maps each variable name to its tuned precision bits
    (significant bits, implicit one included: binary8 is 3, binary16 is
    11, ...).  ``achieved_db`` records the SQNR of the final configuration
    per input set.
    """

    program: str
    type_system: str
    target_db: float
    precision: dict[str, int]
    achieved_db: dict[int, float] = field(default_factory=dict)
    evaluations: int = 0

    def storage_binding(self, ts: TypeSystem) -> dict[str, FPFormat]:
        """Map tuned precisions to the type system's storage formats."""
        return {
            name: ts.storage_format(p) for name, p in self.precision.items()
        }

    def histogram(self, variables: Sequence[VarSpec]) -> dict[int, int]:
        """Memory locations per precision-bit column (Fig. 4 rows)."""
        out: dict[int, int] = {}
        for spec in variables:
            p = self.precision[spec.name]
            out[p] = out.get(p, 0) + spec.size
        return out

    def locations_by_format(
        self, ts: TypeSystem, variables: Sequence[VarSpec]
    ) -> dict[str, int]:
        """Memory locations per storage format (Table I rows)."""
        out: dict[str, int] = {}
        for spec in variables:
            fmt = ts.storage_format(self.precision[spec.name])
            out[fmt.name] = out.get(fmt.name, 0) + spec.size
        return out

    def variables_by_format(
        self, ts: TypeSystem, variables: Sequence[VarSpec]
    ) -> dict[str, int]:
        """Variable (not location) counts per storage format."""
        out: dict[str, int] = {}
        for spec in variables:
            fmt = ts.storage_format(self.precision[spec.name])
            out[fmt.name] = out.get(fmt.name, 0) + 1
        return out

    # ------------------------------------------------------------------
    # Serialization (tuning cache and result store share this format)
    # ------------------------------------------------------------------
    def to_payload(self) -> dict:
        """JSON-able dict, identical to the on-disk tuning-cache layout."""
        return {
            "program": self.program,
            "type_system": self.type_system,
            "target_db": self.target_db,
            "precision": self.precision,
            "achieved_db": {
                str(k): v for k, v in self.achieved_db.items()
            },
            "evaluations": self.evaluations,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "TuningResult":
        return cls(
            program=payload["program"],
            type_system=payload["type_system"],
            target_db=payload["target_db"],
            precision={
                k: int(v) for k, v in payload["precision"].items()
            },
            achieved_db={
                int(k): float(v)
                for k, v in payload["achieved_db"].items()
            },
            evaluations=payload["evaluations"],
        )


class DistributedSearch:
    """Tune one program's variables against an SQNR target.

    Parameters
    ----------
    program:
        Any :class:`repro.tuning.variables.TunableProgram`.
    type_system:
        Supplies the precision-interval to exponent-width map (V1 or V2).
    target_db:
        SQNR constraint the program output must satisfy.
    max_precision:
        Upper precision bound (default: binary32's 24 bits).
    budget:
        Optional hard cap on *uncached* ``evaluate()`` calls; exceeding
        it raises :class:`BudgetExceededError`.  ``None`` (the default)
        means unlimited, which is the pre-budget behaviour.
    oracle:
        Optional :class:`repro.static.StaticOracle`.  Boolean
        meets-target probes consult it before evaluating: a candidate
        whose failure is statically certain is rejected without a
        program evaluation.  Because the oracle never certifies a
        configuration that would in fact meet the target, and numeric
        SQNR comparisons always evaluate for real, the tuned bindings
        are byte-identical with and without it -- only cheaper.
    """

    def __init__(
        self,
        program: TunableProgram,
        type_system: TypeSystem,
        target_db: float,
        max_precision: int = MAX_PRECISION_BITS,
        budget: int | None = None,
        oracle=None,
    ) -> None:
        self._program = program
        self._ts = type_system
        self._target = target_db
        self._max_p = max_precision
        self._budget = budget
        self._oracle = oracle
        self._names = [spec.name for spec in program.variables()]
        self._cache: dict[tuple, float] = {}
        self._references: dict[int, np.ndarray] = {}
        self.evaluations = 0

    # ------------------------------------------------------------------
    # Evaluation with memoization
    # ------------------------------------------------------------------
    def _reference(self, input_id: int) -> np.ndarray:
        if input_id not in self._references:
            self._references[input_id] = np.asarray(
                self._program.run(baseline_binding(self._program), input_id),
                dtype=np.float64,
            )
        return self._references[input_id]

    def _binding(self, precisions: Mapping[str, int]) -> dict[str, FPFormat]:
        return {
            name: self._ts.search_format(p) for name, p in precisions.items()
        }

    def evaluate(
        self, precisions: Mapping[str, int], input_id: int
    ) -> float:
        """SQNR (dB) of the program under a precision assignment."""
        key = (input_id, tuple(precisions[name] for name in self._names))
        if key not in self._cache:
            if self._budget is not None and self.evaluations >= self._budget:
                raise BudgetExceededError(
                    f"{self._program.name}: evaluation budget of "
                    f"{self._budget} exhausted"
                )
            # Only *uncached* evaluations get a span: they are the ones
            # that cost a program execution (attrs are set post-hoc so
            # the telemetry-off path computes nothing extra).
            with _span("tuning.evaluate") as sp:
                output = self._program.run(
                    self._binding(precisions), input_id
                )
                self._cache[key] = sqnr_db(
                    self._reference(input_id), output
                )
                if sp is not None:
                    sp.attrs["program"] = self._program.name
                    sp.attrs["input"] = input_id
                    sp.attrs["sqnr_db"] = float(self._cache[key])
            self.evaluations += 1
        return self._cache[key]

    @property
    def target_db(self) -> float:
        """The SQNR constraint this search works against."""
        return self._target

    def budget_remaining(self) -> float:
        """Uncached evaluations left before the budget trips (inf if none)."""
        if self._budget is None:
            return math.inf
        return max(0, self._budget - self.evaluations)

    def _meets(self, precisions: Mapping[str, int], input_id: int) -> bool:
        if self._oracle is not None:
            key = (
                input_id,
                tuple(precisions[name] for name in self._names),
            )
            # Only uncached probes are worth certifying (cache hits are
            # free), and only boolean probes may be short-circuited.
            if key not in self._cache and self._oracle.certainly_fails(
                self._binding(precisions), input_id
            ):
                self._oracle.pruned += 1
                return False
        return self.evaluate(precisions, input_id) >= self._target

    def _uniform_minimum(self, input_id: int) -> int:
        """Smallest *uniform* precision (all variables equal) meeting
        the target -- the bisection strategy's starting point and the
        annealer's seed assignment.

        The upper bound ``max_p`` must be known feasible (callers check
        feasibility first), and the bound is only lowered onto
        verified-feasible midpoints, so the returned precision is
        feasible even where feasibility is not monotone.
        """
        lo, hi = 1, self._max_p
        while lo < hi:
            mid = (lo + hi) // 2
            if self._meets({n: mid for n in self._names}, input_id):
                hi = mid
            else:
                lo = mid + 1
        return hi

    # ------------------------------------------------------------------
    # The heuristic
    # ------------------------------------------------------------------
    def tune_single_input(self, input_id: int = 0) -> dict[str, int]:
        """Phases 1-3 for one input set; returns precision bits per var."""
        at_max = {name: self._max_p for name in self._names}
        if not self._meets(at_max, input_id):
            raise InfeasibleError(
                f"{self._program.name}: target {self._target:.1f} dB "
                f"unreachable at {self._max_p} precision bits "
                f"(got {self.evaluate(at_max, input_id):.1f} dB)"
            )

        minima: dict[str, int] = {}
        for name in self._names:
            minima[name] = self._independent_minimum(name, input_id)

        current = dict(minima)
        while not self._meets(current, input_id):
            self.grant_best_bit(current, input_id)
        return current

    def _independent_minimum(self, name: str, input_id: int) -> int:
        """Binary-search the lowest workable precision for one variable."""
        lo, hi = 1, self._max_p
        while lo < hi:
            mid = (lo + hi) // 2
            candidate = {n: self._max_p for n in self._names}
            candidate[name] = mid
            if self._meets(candidate, input_id):
                hi = mid
            else:
                lo = mid + 1
        return lo

    def grant_best_bit(
        self, current: dict[str, int], input_id: int
    ) -> None:
        """Give one extra precision bit to the most profitable variable."""
        base = self.evaluate(current, input_id)
        best_name = None
        best_gain = -math.inf
        for name in self._names:
            if current[name] >= self._max_p:
                continue
            trial = dict(current)
            trial[name] += 1
            gain = self.evaluate(trial, input_id) - base
            if gain > best_gain:
                best_gain = gain
                best_name = name
        if best_name is None:  # everything at max and still failing
            raise InfeasibleError(
                f"{self._program.name}: greedy repair exhausted at max "
                f"precision without meeting {self._target:.1f} dB"
            )
        current[best_name] += 1

    # ------------------------------------------------------------------
    def tune(self, input_ids: Sequence[int] | None = None) -> TuningResult:
        """Full flow: per-input tuning plus statistical refinement."""
        from .refine import refine  # local import to avoid a cycle

        if input_ids is None:
            input_ids = list(range(self._program.num_inputs))
        per_input = {i: self.tune_single_input(i) for i in input_ids}
        final = refine(self, per_input)
        result = TuningResult(
            program=self._program.name,
            type_system=self._ts.name,
            target_db=self._target,
            precision=final,
            evaluations=self.evaluations,
        )
        for i in input_ids:
            result.achieved_db[i] = self.evaluate(final, i)
        return result
