"""The FlexFloat wrapper (paper §III-A, last paragraph).

External tuning tools such as DistributedSearch speak files: they write a
configuration listing one precision (in bits) per program variable and
expect the target binary to read it, tune its variables accordingly, and
print its outputs on standard output.  The paper bridges this gap with a
*wrapper* that performs three steps:

1. read the file specifying a required precision for each variable;
2. extract the dynamic range (exponent width) from a configuration file
   that maps precision intervals to exponent widths;
3. instantiate the program with the derived (exponent, mantissa) pairs.

This module reproduces that tool.  The precision file format is
one ``<variable> <bits>`` pair per line (``#`` comments allowed); the
interval map is the type system's, serialized as ``<max_bits> <exp_bits>``
lines.  :class:`FlexFloatWrapper` turns both into a concrete format
binding and runs the program.
"""

from __future__ import annotations

from pathlib import Path
from typing import Mapping

import numpy as np

from repro.core import FPFormat

from .mapping import TypeSystem
from .variables import TunableProgram

__all__ = [
    "FlexFloatWrapper",
    "parse_precision_file",
    "write_precision_file",
    "parse_interval_map",
    "write_interval_map",
]


def parse_precision_file(path: str | Path) -> dict[str, int]:
    """Read a ``<variable> <bits>`` per line precision configuration."""
    out: dict[str, int] = {}
    for lineno, raw in enumerate(Path(path).read_text().splitlines(), 1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) != 2:
            raise ValueError(
                f"{path}:{lineno}: expected '<variable> <bits>', got {raw!r}"
            )
        name, bits = parts
        if name in out:
            raise ValueError(f"{path}:{lineno}: duplicate variable {name!r}")
        out[name] = int(bits)
    return out


def write_precision_file(
    path: str | Path, precision: Mapping[str, int]
) -> None:
    """Serialize a precision assignment in the wrapper's file format."""
    lines = [f"{name} {bits}" for name, bits in sorted(precision.items())]
    Path(path).write_text("\n".join(lines) + "\n")


def parse_interval_map(path: str | Path) -> list[tuple[int, int]]:
    """Read ``<max_precision_bits> <exp_bits>`` interval lines."""
    out: list[tuple[int, int]] = []
    for lineno, raw in enumerate(Path(path).read_text().splitlines(), 1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) != 2:
            raise ValueError(
                f"{path}:{lineno}: expected '<max_bits> <exp_bits>', "
                f"got {raw!r}"
            )
        out.append((int(parts[0]), int(parts[1])))
    if not out:
        raise ValueError(f"{path}: empty interval map")
    return out


def write_interval_map(path: str | Path, ts: TypeSystem) -> None:
    """Serialize a type system's precision-interval to exponent map."""
    lines = [
        f"{max_p} {fmt.exp_bits}  # {fmt.name}" for max_p, fmt in ts.intervals
    ]
    Path(path).write_text("\n".join(lines) + "\n")


class FlexFloatWrapper:
    """Instantiate and run a program from tuner-facing configuration files.

    Parameters
    ----------
    program:
        The tunable program to wrap.
    interval_map:
        Either a :class:`TypeSystem` or a parsed ``(max_bits, exp_bits)``
        list (e.g. from :func:`parse_interval_map`).
    """

    def __init__(
        self,
        program: TunableProgram,
        interval_map: TypeSystem | list[tuple[int, int]],
    ) -> None:
        self._program = program
        if isinstance(interval_map, TypeSystem):
            self._intervals = [
                (max_p, fmt.exp_bits) for max_p, fmt in interval_map.intervals
            ]
        else:
            self._intervals = sorted(interval_map)

    def exponent_bits_for(self, precision_bits: int) -> int:
        """Step 2: dynamic range from the precision-interval map."""
        for max_p, exp_bits in self._intervals:
            if precision_bits <= max_p:
                return exp_bits
        raise ValueError(
            f"precision {precision_bits} not covered by the interval map"
        )

    def binding_from_precision(
        self, precision: Mapping[str, int]
    ) -> dict[str, FPFormat]:
        """Step 3: derive the template instantiation for every variable."""
        declared = {spec.name for spec in self._program.variables()}
        unknown = set(precision) - declared
        if unknown:
            raise ValueError(
                f"precision file names unknown variables: {sorted(unknown)}"
            )
        missing = declared - set(precision)
        if missing:
            raise ValueError(
                f"precision file misses variables: {sorted(missing)}"
            )
        return {
            name: FPFormat(self.exponent_bits_for(bits), bits - 1)
            for name, bits in precision.items()
        }

    def run_from_file(
        self, precision_path: str | Path, input_id: int = 0
    ) -> np.ndarray:
        """Steps 1-3 plus execution: what the tuner invokes per candidate."""
        precision = parse_precision_file(precision_path)
        binding = self.binding_from_precision(precision)
        return self._program.run(binding, input_id)
