"""Statistical refinement across input sets (paper §II, second phase).

DistributedSearch tunes precision for one input set at a time; the second
phase joins those per-input bindings into one assignment valid for every
input set.  The join is conservative -- take the per-variable maximum --
followed by validation: if some input still misses the target (possible
because even the maximum can interact differently with other variables'
precisions), the greedy repair loop hands out additional bits against the
failing input until every input passes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .search import DistributedSearch

__all__ = ["refine"]


def refine(
    search: "DistributedSearch",
    per_input: Mapping[int, Mapping[str, int]],
) -> dict[str, int]:
    """Join per-input precision assignments into one validated binding."""
    if not per_input:
        raise ValueError("refine() needs at least one per-input result")

    names = next(iter(per_input.values())).keys()
    joined = {
        name: max(result[name] for result in per_input.values())
        for name in names
    }

    for input_id in sorted(per_input):
        while search.evaluate(joined, input_id) < search.target_db:
            search.grant_best_bit(joined, input_id)
    return joined
