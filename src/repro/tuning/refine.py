"""Statistical refinement across input sets (paper §II, second phase).

DistributedSearch tunes precision for one input set at a time; the second
phase joins those per-input bindings into one assignment valid for every
input set.  The join is conservative -- take the per-variable maximum --
followed by validation: if some input still misses the target (possible
because even the maximum can interact differently with other variables'
precisions), the greedy repair loop hands out additional bits against the
failing input until every input passes.

Validation sweeps run to a fixpoint: SQNR is not monotone in a single
variable's precision (rounding points move with the mantissa width, and
programs with discrete selections -- KNN's argmin, say -- can flip), so
a bit granted against one input can un-satisfy an input validated
earlier in the sweep.  Sweeping until every input passes in one clean
pass restores the contract; each grant strictly increases total
precision bits, so the loop terminates (or the repair raises
``InfeasibleError`` at maximum precision).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .search import DistributedSearch

__all__ = ["refine"]


def refine(
    search: "DistributedSearch",
    per_input: Mapping[int, Mapping[str, int]],
) -> dict[str, int]:
    """Join per-input precision assignments into one validated binding."""
    if not per_input:
        raise ValueError("refine() needs at least one per-input result")

    names = next(iter(per_input.values())).keys()
    joined = {
        name: max(result[name] for result in per_input.values())
        for name in names
    }

    granted = True
    while granted:
        granted = False
        for input_id in sorted(per_input):
            while search.evaluate(joined, input_id) < search.target_db:
                search.grant_best_bit(joined, input_id)
                granted = True
    return joined
