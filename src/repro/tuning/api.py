"""The pluggable tuning-strategy API: one problem, many solvers.

Precision tuning is the platform's most expensive phase, and -- as
Borghesi et al. show for transprecision computing generally -- its
quality/cost trade-off hinges on the *search procedure*, not just the
target.  This module makes the solver a first-class, swappable part of
the platform, mirroring the arithmetic-backend and type-system
registries:

* :class:`TuningProblem` -- everything a solver needs: the program, the
  type system, the SQNR target, the input sets, and an optional
  evaluation budget.
* :class:`TuningStrategy` -- the solver contract: ``solve(problem) ->
  TuningReport``.  Concrete strategies implement :meth:`search` and
  inherit the accounting wrapper.
* :class:`TuningReport` -- a :class:`~repro.tuning.search.TuningResult`
  plus evaluation/wall-time accounting, with lossless
  ``to_payload``/``from_payload``.
* a name registry (:func:`register_strategy`, :func:`resolve_strategy`,
  :func:`strategy_names`) through which every layer above --
  ``TransprecisionFlow``, ``Session``, the experiment runner, the CLI's
  ``--strategy`` -- selects the solver by name.

Four strategies ship:

========== ==========================================================
``greedy``     the paper's :class:`DistributedSearch` heuristic
               (independent minima + greedy joint repair); the default,
               bit-identical to the pre-registry tuning path
``bisect``     :class:`~repro.tuning.bisect.BisectionSearch`: uniform
               bisection + feasibility-invariant per-variable trim;
               same targets, 40-70% fewer evaluations
``cast_aware`` :class:`~repro.tuning.castaware.CastAwareSearch`: greedy
               plus the cast-cost-driven format-merge phase (§VI)
``anneal``     :class:`~repro.tuning.anneal.AnnealingSearch`: seeded
               random-restart annealing for non-monotone programs
========== ==========================================================

Registering a custom strategy::

    from repro.tuning import TuningStrategy, register_strategy

    @register_strategy
    class MySearch(TuningStrategy):
        name = "mine"
        def search(self, problem):
            ...  # return a TuningResult

    session = Session(default_strategy="mine")
"""

from __future__ import annotations

import dataclasses
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.telemetry import span as _span

from .anneal import AnnealingSearch
from .bisect import BisectionSearch
from .castaware import CastAwareSearch
from .mapping import MAX_PRECISION_BITS, TypeSystem
from .search import DistributedSearch, TuningResult
from .sqnr import precision_to_sqnr_db
from .variables import TunableProgram

__all__ = [
    "DEFAULT_STRATEGY",
    "TuningProblem",
    "TuningReport",
    "TuningStrategy",
    "GreedyStrategy",
    "BisectionStrategy",
    "CastAwareStrategy",
    "AnnealingStrategy",
    "register_strategy",
    "registered_name",
    "resolve_strategy",
    "strategy_names",
]

#: The strategy every layer assumes when none is named; results produced
#: under it are keyed exactly like the pre-registry platform's, so old
#: caches and stores stay valid.
DEFAULT_STRATEGY = "greedy"


# ----------------------------------------------------------------------
# The problem
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TuningProblem:
    """One precision-tuning task, solver-agnostic.

    Attributes
    ----------
    program:
        The black-box :class:`TunableProgram` to tune.
    type_system:
        Supplies the precision-interval to exponent-width map.
    target_db:
        The SQNR constraint the tuned program must satisfy.
    input_ids:
        Input sets to tune against; ``None`` means all of the program's
        declared inputs.
    max_precision:
        Upper precision bound (binary32's 24 bits by default).
    budget:
        Optional hard cap on program evaluations; strategies either
        respect it cooperatively (``anneal``) or fail loudly with
        :class:`~repro.tuning.search.BudgetExceededError`.
    oracle:
        Optional :class:`repro.static.StaticOracle` the search-based
        strategies (``greedy``/``bisect``/``cast_aware``) consult to
        reject statically-certain failures without spending an
        evaluation.  Excluded from equality/hashing: a problem is the
        same problem with or without its pruning accelerator, and the
        tuned bindings are byte-identical either way.
    """

    program: TunableProgram
    type_system: TypeSystem
    target_db: float
    input_ids: "tuple[int, ...] | None" = None
    max_precision: int = MAX_PRECISION_BITS
    budget: "int | None" = None
    oracle: "object | None" = dataclasses.field(
        default=None, compare=False
    )

    def __post_init__(self) -> None:
        if self.input_ids is not None:
            object.__setattr__(self, "input_ids", tuple(self.input_ids))

    def with_oracle(self, gated: "frozenset[str] | None" = None):
        """This problem plus a fresh static pruning oracle.

        The oracle is built for this problem's program and target; on
        programs outside :data:`repro.static.GATED_PROGRAMS` (or the
        ``gated`` override) it never certifies anything, so attaching it
        is always safe.
        """
        from repro.static import StaticOracle  # local: avoid a cycle

        return dataclasses.replace(
            self,
            oracle=StaticOracle(self.program, self.target_db, gated=gated),
        )

    def static_report(self, input_id: int = 0):
        """The program's per-variable static certificates (one input).

        Convenience door to :func:`repro.static.analyze_program`: the
        interval hulls, exponent-bit lower bounds, and per-format
        overflow/saturation certificates solvers or callers may want to
        inspect before spending evaluations.
        """
        from repro.static import analyze_program  # local: avoid a cycle

        return analyze_program(self.program, input_id)

    @classmethod
    def for_precision(
        cls,
        program: TunableProgram,
        type_system: TypeSystem,
        precision: float,
        **kwargs,
    ) -> "TuningProblem":
        """Build a problem from a paper-style precision level (1e-1...)."""
        return cls(
            program,
            type_system,
            precision_to_sqnr_db(precision),
            **kwargs,
        )

    def resolved_input_ids(self) -> tuple[int, ...]:
        """The concrete input sets this problem tunes against."""
        if self.input_ids is not None:
            return self.input_ids
        return tuple(range(self.program.num_inputs))


# ----------------------------------------------------------------------
# The report
# ----------------------------------------------------------------------
@dataclass
class TuningReport:
    """A tuning outcome plus how much it cost to obtain.

    Wraps the :class:`TuningResult` every downstream consumer already
    understands with the accounting the strategy-comparison tooling
    needs: the strategy name, the number of (uncached) program
    evaluations spent, the wall time, and whether the result came from
    a cache (in which case nothing was spent *now*; ``evaluations``
    still records what the original search cost).
    """

    strategy: str
    result: TuningResult
    evaluations: int
    wall_time_s: float
    cached: bool = False

    # Convenience passthrough: a report can stand in for its result in
    # the common "give me the storage binding" call.
    def storage_binding(self, ts: TypeSystem) -> dict:
        return self.result.storage_binding(ts)

    # ------------------------------------------------------------------
    # Serialization (lossless round-trip, same contract as TuningResult)
    # ------------------------------------------------------------------
    def to_payload(self) -> dict:
        """JSON-able dict; ``from_payload`` rebuilds an equal report."""
        return {
            "strategy": self.strategy,
            "result": self.result.to_payload(),
            "evaluations": self.evaluations,
            "wall_time_s": self.wall_time_s,
            "cached": self.cached,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "TuningReport":
        return cls(
            strategy=payload["strategy"],
            result=TuningResult.from_payload(payload["result"]),
            evaluations=int(payload["evaluations"]),
            wall_time_s=float(payload["wall_time_s"]),
            cached=bool(payload["cached"]),
        )


# ----------------------------------------------------------------------
# The strategy contract
# ----------------------------------------------------------------------
class TuningStrategy(ABC):
    """One precision-tuning solver, selectable by name.

    Concrete strategies implement :meth:`search` (problem in,
    :class:`TuningResult` out) and declare a unique ``name``;
    :meth:`solve` wraps the search with wall-time and evaluation
    accounting.  Strategies must be stateless across calls (one shared
    instance per registry entry serves every session and worker), and
    deterministic: the same problem must produce the same result in a
    serial run and in a pool worker.
    """

    name: str = ""

    @abstractmethod
    def search(self, problem: TuningProblem) -> TuningResult:
        """Solve the problem; must honour its budget and input ids."""

    def solve(self, problem: TuningProblem) -> TuningReport:
        """Run :meth:`search` under evaluation/wall-time accounting."""
        start = time.perf_counter()
        with _span("tuning.solve") as sp:
            result = self.search(problem)
            if sp is not None:
                sp.attrs["strategy"] = self.name
                sp.attrs["program"] = problem.program.name
                sp.attrs["evaluations"] = result.evaluations
        return TuningReport(
            strategy=self.name,
            result=result,
            evaluations=result.evaluations,
            wall_time_s=time.perf_counter() - start,
        )


# ----------------------------------------------------------------------
# Registry (mirrors the backend and type-system registries)
# ----------------------------------------------------------------------
_REGISTRY: dict[str, TuningStrategy] = {}


def register_strategy(strategy) -> type:
    """Register a strategy class (usable as a decorator) or instance.

    Lookup is case-insensitive.  Re-registering the same class under
    its name is idempotent; registering a *different* class under an
    existing name is refused -- silently swapping what ``"greedy"``
    means would poison every cache and store entry keyed by it.

    Like custom arithmetic backends, strategies cross process
    boundaries by *name* only (they are code, not data, so the runner
    cannot ship them to workers the way it ships custom type-system
    definitions): a custom strategy used with ``--jobs N`` must be
    registered at import time of a module the worker imports.  With the
    default fork start method workers inherit the parent's registry, so
    ad-hoc registrations work too; spawn-started workers (macOS/
    Windows) resolve only import-time registrations.
    """
    instance = strategy() if isinstance(strategy, type) else strategy
    if not instance.name:
        raise ValueError(
            f"{type(instance).__name__} declares no strategy name"
        )
    key = instance.name.lower()
    existing = _REGISTRY.get(key)
    if existing is not None and (
        type(existing) is not type(instance)
        or existing.__dict__ != instance.__dict__
    ):
        # A same-named solver with a different class *or* different
        # configuration (an AnnealingStrategy with another seed, say)
        # would produce different bindings under unchanged cache and
        # store keys.  To ship a reconfigured solver, give the instance
        # its own name: ``s = AnnealingStrategy(seed=42); s.name =
        # "anneal42"; register_strategy(s)``.
        raise ValueError(
            f"strategy name {instance.name!r} already registered by a "
            f"differently configured {type(existing).__name__}"
        )
    _REGISTRY[key] = instance
    return strategy


def resolve_strategy(
    spec: "TuningStrategy | str | None" = None,
) -> TuningStrategy:
    """Turn a name (or None, or an instance) into a strategy instance.

    ``None`` resolves to the platform default (:data:`DEFAULT_STRATEGY`);
    instances pass through untouched.
    """
    if isinstance(spec, TuningStrategy):
        return spec
    name = DEFAULT_STRATEGY if spec is None else spec
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        known = ", ".join(strategy_names())
        raise KeyError(
            f"unknown tuning strategy {name!r} (known: {known})"
        ) from None


def strategy_names() -> tuple[str, ...]:
    """Registered strategy names, in registration order."""
    return tuple(s.name for s in _REGISTRY.values())


def registered_name(spec: "TuningStrategy | str | None") -> str:
    """Reduce a strategy spec to a registry name that round-trips.

    Sessions, flows and job specs keep only the *name* (it keys tuning
    caches and result stores, and it is all that crosses a process
    boundary), so an instance must resolve back to itself through the
    registry -- otherwise a configured solver would be silently
    replaced by the registry singleton of the same name.  Raises
    ``TypeError`` for such impostors and ``KeyError`` for unknown
    names.
    """
    resolved = resolve_strategy(spec)
    if resolve_strategy(resolved.name) is not resolved:
        raise TypeError(
            f"strategy {resolved.name!r} does not resolve back to the "
            "given instance; register_strategy() it under its own name "
            "first"
        )
    return resolved.name


# ----------------------------------------------------------------------
# Built-in strategies
# ----------------------------------------------------------------------
@register_strategy
class GreedyStrategy(TuningStrategy):
    """The paper's greedy heuristic (fpPrecisionTuning-style); default.

    Independent per-variable minima followed by greedy joint repair --
    exactly :class:`DistributedSearch`, so results, caches and store
    entries are bit-identical to the pre-registry tuning path.
    """

    name = "greedy"
    search_cls = DistributedSearch

    def _searcher(self, problem: TuningProblem) -> DistributedSearch:
        return self.search_cls(
            problem.program,
            problem.type_system,
            problem.target_db,
            problem.max_precision,
            budget=problem.budget,
            oracle=problem.oracle,
        )

    def search(self, problem: TuningProblem) -> TuningResult:
        return self._searcher(problem).tune(problem.input_ids)


@register_strategy
class BisectionStrategy(GreedyStrategy):
    """Uniform bisection + feasibility-invariant per-variable trim.

    Reaches the same SQNR targets as ``greedy`` with 40-70% fewer
    program evaluations on the paper grid (no linear bit-granting
    repair loop); see :mod:`repro.tuning.bisect`.
    """

    name = "bisect"
    search_cls = BisectionSearch


@register_strategy
class CastAwareStrategy(GreedyStrategy):
    """Greedy plus the cast-cost-driven format-merge phase (paper §VI)."""

    name = "cast_aware"
    search_cls = CastAwareSearch

    def search(self, problem: TuningProblem) -> TuningResult:
        return self._searcher(problem).tune_cast_aware(problem.input_ids)


@register_strategy
class AnnealingStrategy(TuningStrategy):
    """Seeded random-restart annealing for non-monotone programs.

    Starts from the smallest feasible uniform assignment (the
    ``uniform_binding`` shape: every variable at one precision) and
    walks stochastically but deterministically (fixed RNG seeds).  The
    walk honours the problem's evaluation budget cooperatively; the
    mandatory feasibility/seeding/refinement evaluations still trip
    ``BudgetExceededError`` on budgets too small to cover them.  See
    :mod:`repro.tuning.anneal`.
    """

    name = "anneal"

    def __init__(
        self,
        seed: int = 0,
        restarts: int = 2,
        steps: int = 48,
        initial_temp: float = 3.0,
        cooling: float = 0.94,
    ) -> None:
        self.seed = seed
        self.restarts = restarts
        self.steps = steps
        self.initial_temp = initial_temp
        self.cooling = cooling

    def search(self, problem: TuningProblem) -> TuningResult:
        search = AnnealingSearch(
            problem.program,
            problem.type_system,
            problem.target_db,
            problem.max_precision,
            budget=problem.budget,
            seed=self.seed,
            restarts=self.restarts,
            steps=self.steps,
            initial_temp=self.initial_temp,
            cooling=self.cooling,
        )
        return search.tune(problem.input_ids)
