"""Precision tuning: SQNR metric, type systems, pluggable strategies.

Typical use, strategy API (preferred)::

    from repro.tuning import TuningProblem, V2, resolve_strategy
    problem = TuningProblem.for_precision(app, V2, 1e-1)
    report = resolve_strategy("bisect").solve(problem)
    binding = report.result.storage_binding(V2)

or driving a search class directly::

    from repro.tuning import DistributedSearch, V2, precision_to_sqnr_db
    search = DistributedSearch(app, V2, precision_to_sqnr_db(1e-1))
    result = search.tune()
    binding = result.storage_binding(V2)
"""

from .anneal import AnnealingSearch
from .api import (
    DEFAULT_STRATEGY,
    AnnealingStrategy,
    BisectionStrategy,
    CastAwareStrategy,
    GreedyStrategy,
    TuningProblem,
    TuningReport,
    TuningStrategy,
    register_strategy,
    registered_name,
    resolve_strategy,
    strategy_names,
)
from .bisect import BisectionSearch
from .castaware import CastAwareSearch, estimate_cost_pj
from .mapping import (
    MAX_PRECISION_BITS,
    V1,
    V2,
    V2_NO8,
    TypeSystem,
    register_type_system,
    type_system,
    type_system_names,
)
from .range_analysis import (
    RangeReport,
    analyze_range,
    exponent_bits_needed,
    fitting_formats,
)
from .refine import refine
from .search import (
    BudgetExceededError,
    DistributedSearch,
    InfeasibleError,
    TuningResult,
)
from .sqnr import (
    PRECISION_LEVELS,
    meets_target,
    precision_to_sqnr_db,
    sqnr_db,
)
from .variables import (
    TunableProgram,
    VarSpec,
    baseline_binding,
    uniform_binding,
)
from .wrapper import (
    FlexFloatWrapper,
    parse_interval_map,
    parse_precision_file,
    write_interval_map,
    write_precision_file,
)

__all__ = [
    "DEFAULT_STRATEGY",
    "TuningProblem",
    "TuningReport",
    "TuningStrategy",
    "GreedyStrategy",
    "BisectionStrategy",
    "CastAwareStrategy",
    "AnnealingStrategy",
    "register_strategy",
    "registered_name",
    "resolve_strategy",
    "strategy_names",
    "AnnealingSearch",
    "BisectionSearch",
    "BudgetExceededError",
    "CastAwareSearch",
    "estimate_cost_pj",
    "TypeSystem",
    "V1",
    "V2",
    "V2_NO8",
    "MAX_PRECISION_BITS",
    "register_type_system",
    "type_system",
    "type_system_names",
    "DistributedSearch",
    "TuningResult",
    "InfeasibleError",
    "refine",
    "RangeReport",
    "analyze_range",
    "exponent_bits_needed",
    "fitting_formats",
    "sqnr_db",
    "meets_target",
    "precision_to_sqnr_db",
    "PRECISION_LEVELS",
    "VarSpec",
    "TunableProgram",
    "baseline_binding",
    "uniform_binding",
    "FlexFloatWrapper",
    "parse_precision_file",
    "write_precision_file",
    "parse_interval_map",
    "write_interval_map",
]
