"""Signal-to-quantization-noise ratio (SQNR), the tuner's constraint metric.

fpPrecisionTuning (Ho et al., ASP-DAC'17) expresses the required precision
of program outputs as an SQNR the outputs must satisfy against an exact
reference.  The paper quotes precision requirements as 10^-1, 10^-2 and
10^-3; we read these as *noise-to-signal power ratios*, i.e. the output
must satisfy ``SQNR >= 1/precision`` (10*k dB for 10^-k).  The paper is
ambiguous between this and the amplitude reading (20*k dB); the power
reading is the one consistent with its published per-variable precision
tables (e.g. 6-bit convolution images and 1-bit SVM features passing the
10^-3 requirement in Fig. 4), so it is the default here.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "sqnr_db",
    "meets_target",
    "precision_to_sqnr_db",
    "PRECISION_LEVELS",
]

#: The three precision requirements evaluated throughout the paper.
PRECISION_LEVELS = (1e-1, 1e-2, 1e-3)


def sqnr_db(reference, output) -> float:
    """SQNR in dB between an exact reference and a program output.

    ``10 * log10(sum(ref^2) / sum((ref - out)^2))``.  Conventions:

    * a perfect match returns ``inf``;
    * any NaN or infinity in the output returns ``-inf`` (the candidate
      precision assignment destroyed the result -- e.g. a narrow format
      saturated);
    * an all-zero reference with a non-zero output returns ``-inf``.
    """
    ref = np.asarray(reference, dtype=np.float64).reshape(-1)
    out = np.asarray(output, dtype=np.float64).reshape(-1)
    if ref.shape != out.shape:
        raise ValueError(
            f"reference and output sizes differ: {ref.size} vs {out.size}"
        )
    if not np.all(np.isfinite(out)):
        return -math.inf
    noise = float(np.sum((ref - out) ** 2))
    signal = float(np.sum(ref ** 2))
    if noise == 0.0:
        return math.inf
    if signal == 0.0:
        return -math.inf
    return 10.0 * math.log10(signal / noise)


def meets_target(reference, output, target_db: float) -> bool:
    """True when the output satisfies the SQNR constraint."""
    return sqnr_db(reference, output) >= target_db


def precision_to_sqnr_db(precision: float) -> float:
    """Map a 10^-k precision requirement to its SQNR target in dB.

    ``precision`` is the tolerated noise-to-signal power ratio:
    10^-1 -> 10 dB, 10^-2 -> 20 dB, 10^-3 -> 30 dB.
    """
    if not 0.0 < precision < 1.0:
        raise ValueError(f"precision must be in (0, 1), got {precision}")
    return -10.0 * math.log10(precision)
