"""Random-restart annealing over precision assignments.

The greedy and bisection searches both walk *constructively*: they only
ever move along trajectories where each step is locally justified, which
is exactly where non-monotone applications bite.  Crossing the
binary16alt -> binary16 interval boundary trades exponent for mantissa
bits, so a program's feasibility landscape over precision assignments
can have ridges a constructive search never crosses: lowering variable A
is infeasible *unless* variable B is simultaneously raised.

:class:`AnnealingSearch` attacks those landscapes stochastically:

1. **Feasibility** -- identical to the base search.
2. **Uniform seed** -- the walk starts from the smallest feasible
   *uniform* assignment: every declared variable at one precision
   (conceptually :func:`repro.tuning.variables.uniform_binding` at the
   seed precision realised through the type system's search formats),
   found by the shared
   :meth:`~repro.tuning.search.DistributedSearch._uniform_minimum`
   bisection.
3. **Annealed walk, restarted** -- from the seed (and, on later
   restarts, from the best assignment found so far), propose single
   variable +/-1-bit moves biased toward decreases; infeasible
   proposals are always rejected, cost-improving feasible ones always
   accepted, cost-worsening feasible ones accepted with a cooling
   ``exp(-delta/temperature)`` probability.  Cost is total precision
   bits.  The best *feasible* assignment ever visited is returned.

The walk is fully deterministic: the RNG is seeded from ``(seed,
restart, input_id)``, so two runs -- or a serial run and a pool worker
-- produce identical results.  The *walk* honours the evaluation budget
cooperatively: it stops proposing once
:meth:`~repro.tuning.search.DistributedSearch.budget_remaining` hits
zero and keeps the best assignment found so far (an incumbent always
exists: the uniform seed).  The correctness-mandatory phases -- the
feasibility check, the uniform seeding of each input, and the shared
multi-input refinement -- cannot be skipped, so a budget too small to
cover them still fails loudly with
:class:`~repro.tuning.search.BudgetExceededError` rather than
returning an unvalidated assignment.
"""

from __future__ import annotations

import math

import numpy as np

from .mapping import MAX_PRECISION_BITS, TypeSystem
from .search import DistributedSearch, InfeasibleError
from .variables import TunableProgram

__all__ = ["AnnealingSearch"]


class AnnealingSearch(DistributedSearch):
    """DistributedSearch with a seeded random-restart annealing walk.

    Parameters (beyond the base search's)
    -------------------------------------
    seed:
        Root RNG seed; the per-walk seed also mixes in the restart index
        and the input id so every walk is independent yet reproducible.
    restarts:
        Number of annealing walks per input set.
    steps:
        Proposals per walk.
    initial_temp / cooling:
        Metropolis temperature schedule (multiplicative cooling per
        proposal).
    """

    def __init__(
        self,
        program: TunableProgram,
        type_system: TypeSystem,
        target_db: float,
        max_precision: int = MAX_PRECISION_BITS,
        budget: int | None = None,
        seed: int = 0,
        restarts: int = 2,
        steps: int = 48,
        initial_temp: float = 3.0,
        cooling: float = 0.94,
    ) -> None:
        super().__init__(
            program, type_system, target_db, max_precision, budget
        )
        self.seed = seed
        self.restarts = restarts
        self.steps = steps
        self.initial_temp = initial_temp
        self.cooling = cooling

    # ------------------------------------------------------------------
    def tune_single_input(self, input_id: int = 0) -> dict[str, int]:
        """Phases 1-3 for one input set; returns precision bits per var."""
        at_max = {name: self._max_p for name in self._names}
        if not self._meets(at_max, input_id):
            raise InfeasibleError(
                f"{self._program.name}: target {self._target:.1f} dB "
                f"unreachable at {self._max_p} precision bits "
                f"(got {self.evaluate(at_max, input_id):.1f} dB)"
            )

        uniform = self._uniform_minimum(input_id)
        best = {name: uniform for name in self._names}
        best_cost = self._cost(best)
        for restart in range(self.restarts):
            rng = np.random.default_rng([self.seed, restart, input_id])
            best, best_cost = self._walk(
                rng, dict(best), best, best_cost, input_id
            )
        return best

    # ------------------------------------------------------------------
    def _cost(self, precisions: dict[str, int]) -> int:
        return sum(precisions.values())

    def _walk(
        self,
        rng: np.random.Generator,
        current: dict[str, int],
        best: dict[str, int],
        best_cost: int,
        input_id: int,
    ):
        """One annealing walk; returns the updated (best, best_cost)."""
        current_cost = self._cost(current)
        temp = self.initial_temp
        for _ in range(self.steps):
            if self.budget_remaining() <= 0:
                break
            name = self._names[rng.integers(len(self._names))]
            delta = -1 if rng.random() < 0.7 else 1
            candidate = min(
                self._max_p, max(1, current[name] + delta)
            )
            temp = max(temp * self.cooling, 1e-6)
            if candidate == current[name]:
                continue
            trial = dict(current)
            trial[name] = candidate
            if not self._meets(trial, input_id):
                continue
            trial_cost = self._cost(trial)
            worse = trial_cost - current_cost
            if worse > 0 and rng.random() >= math.exp(-worse / temp):
                continue
            current, current_cost = trial, trial_cost
            if current_cost < best_cost:
                best, best_cost = dict(current), current_cost
        return best, best_cost
