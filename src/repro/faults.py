"""Deterministic, seeded fault injection for the experiment engine.

The fault-tolerance layer (runner retries/timeouts, store quarantine,
write verification) is only trustworthy if every recovery path can be
rehearsed on demand -- and rehearsed *bit-reproducibly*, so CI failures
replay locally.  This module provides that rehearsal harness:

* :class:`FaultPlan` -- a frozen, picklable description of which faults
  to inject at which rates.  Every decision is a pure function of
  ``(seed, site, token, attempt)`` via SHA-256, so two runs of the same
  plan over the same grid inject *exactly* the same faults, regardless
  of worker count, scheduling order, or which process asks.
* Injection sites, called from the runner/store at the right moments:

  - :func:`maybe_crash` -- hard worker death (``os._exit``), producing
    a real ``BrokenProcessPool`` in the parent;
  - :func:`maybe_hang` -- a configurable sleep, exercising the
    per-job timeout;
  - :func:`maybe_io_error` -- a transient :class:`InjectedIOError`
    (an ``OSError``) on store I/O, exercising the retry path;
  - :func:`maybe_corrupt_file` -- byte-level envelope corruption of a
    just-written store file, exercising write verification and the
    quarantine/fsck path.

Faults are *attempt-scoped*: a plan with ``crash_attempts=1`` crashes a
job's first attempt and lets the retry through, which is what makes the
"recovery must be bit-identical to a clean run" invariant testable.
The current attempt number is process-local state installed by the
worker entry point (:func:`job_context`); code that never enters a job
context runs at attempt 0.

Activation is explicit (:func:`activate` / :func:`use_plan`) and
travels across process boundaries inside the session spec (see
:meth:`repro.session.Session.spec`), so pool workers rehearse the same
plan the parent does.  For ad-hoc rehearsal, ``REPRO_FAULTS`` may hold
the plan as JSON (see :func:`plan_from_env`); the CLI picks it up.

This module imports nothing from the rest of :mod:`repro`, so any layer
(store, session, runner) may call into it without cycles.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from contextlib import contextmanager
from dataclasses import asdict, dataclass, fields
from typing import Iterator

__all__ = [
    "ENV_VAR",
    "FaultPlan",
    "InjectedIOError",
    "activate",
    "active_plan",
    "deactivate",
    "use_plan",
    "plan_from_env",
    "job_context",
    "current_attempt",
    "maybe_crash",
    "maybe_hang",
    "maybe_io_error",
    "maybe_corrupt_file",
]

#: Environment variable holding a JSON-encoded :class:`FaultPlan` for
#: local/CI rehearsal (``repro run`` activates it automatically).
ENV_VAR = "REPRO_FAULTS"

#: Exit status injected worker crashes die with (visible in worker
#: post-mortems; any non-zero status breaks the pool the same way).
CRASH_EXIT_STATUS = 17


class InjectedIOError(OSError):
    """A deterministic, injected transient store-I/O failure."""


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, picklable schedule of injected faults.

    Rates are probabilities in ``[0, 1]`` evaluated independently per
    ``(site, token, attempt)``; ``*_attempts`` bounds which attempts of
    a job are eligible (the default ``1`` means "first attempt only",
    so every injected fault is recoverable by a single retry).
    """

    seed: int = 0
    #: Hard worker death (``os._exit``) at job start -> BrokenProcessPool.
    crash_rate: float = 0.0
    crash_attempts: int = 1
    #: Worker sleeps ``hang_seconds`` at job start -> job timeout.
    hang_rate: float = 0.0
    hang_attempts: int = 1
    hang_seconds: float = 30.0
    #: Transient OSError on store I/O (load degrades to a miss; save
    #: propagates and is retried by the runner).
    io_error_rate: float = 0.0
    io_error_attempts: int = 1
    #: Byte-level corruption of a just-written store envelope (caught
    #: by write verification; at-rest corruption is quarantined).
    corrupt_rate: float = 0.0
    corrupt_attempts: int = 1

    def __post_init__(self) -> None:
        for name in (
            "crash_rate", "hang_rate", "io_error_rate", "corrupt_rate"
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate!r}")
        if self.hang_seconds < 0:
            raise ValueError("hang_seconds must be >= 0")

    # ------------------------------------------------------------------
    def fraction(self, site: str, token: str, attempt: int) -> float:
        """The deterministic uniform draw for one decision point."""
        digest = hashlib.sha256(
            f"{self.seed}:{site}:{token}:{attempt}".encode()
        ).digest()
        return int.from_bytes(digest[:8], "big") / 2.0**64

    def fires(
        self, site: str, token: str, attempt: int,
        rate: float, eligible_attempts: int,
    ) -> bool:
        if rate <= 0.0 or attempt >= eligible_attempts:
            return False
        return self.fraction(site, token, attempt) < rate

    # ------------------------------------------------------------------
    def to_payload(self) -> dict:
        """A JSON-able dict :meth:`from_payload` round-trips exactly."""
        return asdict(self)

    @classmethod
    def from_payload(cls, payload: dict) -> "FaultPlan":
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(
                f"unknown FaultPlan fields: {sorted(unknown)} "
                f"(known: {sorted(known)})"
            )
        return cls(**payload)


# ----------------------------------------------------------------------
# Activation (process-global; travels via the session spec)
# ----------------------------------------------------------------------
_active: "FaultPlan | None" = None
_attempt: int = 0


def activate(plan: FaultPlan) -> FaultPlan:
    """Install ``plan`` as this process's active fault plan."""
    global _active
    if not isinstance(plan, FaultPlan):
        raise TypeError(f"expected a FaultPlan, got {type(plan).__name__}")
    _active = plan
    return plan


def deactivate() -> None:
    """Remove the active plan (and reset the attempt context)."""
    global _active, _attempt
    _active = None
    _attempt = 0


def active_plan() -> "FaultPlan | None":
    return _active


@contextmanager
def use_plan(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Activate ``plan`` for a block, restoring the previous plan after."""
    global _active
    previous = _active
    activate(plan)
    try:
        yield plan
    finally:
        _active = previous


def plan_from_env(text: "str | None" = None) -> "FaultPlan | None":
    """Parse a plan from ``text`` or the ``REPRO_FAULTS`` variable.

    Returns None when the variable is unset/empty; raises ``ValueError``
    on malformed JSON or unknown fields (a typo'd rehearsal knob must
    fail loudly, not silently rehearse nothing).
    """
    raw = text if text is not None else os.environ.get(ENV_VAR, "")
    if not raw.strip():
        return None
    try:
        payload = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise ValueError(f"{ENV_VAR} is not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise ValueError(f"{ENV_VAR} must hold a JSON object")
    return FaultPlan.from_payload(payload)


# ----------------------------------------------------------------------
# Attempt context (set by the worker entry / the runner's retry loop)
# ----------------------------------------------------------------------
@contextmanager
def job_context(attempt: int) -> Iterator[None]:
    """Scope the current job attempt number for injection decisions."""
    global _attempt
    previous = _attempt
    _attempt = int(attempt)
    try:
        yield
    finally:
        _attempt = previous


def current_attempt() -> int:
    return _attempt


# ----------------------------------------------------------------------
# Injection sites
# ----------------------------------------------------------------------
def maybe_crash(token: str, attempt: "int | None" = None) -> None:
    """Hard-kill this process if the plan says so.

    Only ever called from the pool-worker entry point
    (:func:`repro.runner.engine.execute_job`): the parent process and
    the serial fallback never reach this site, so an injected crash can
    break a pool but never a campaign.
    """
    plan = _active
    if plan is None:
        return
    attempt = _attempt if attempt is None else attempt
    if plan.fires(
        "crash", token, attempt, plan.crash_rate, plan.crash_attempts
    ):
        os._exit(CRASH_EXIT_STATUS)


def maybe_hang(token: str, attempt: "int | None" = None) -> None:
    """Sleep ``hang_seconds`` if the plan says so (worker-only site)."""
    plan = _active
    if plan is None:
        return
    attempt = _attempt if attempt is None else attempt
    if plan.fires(
        "hang", token, attempt, plan.hang_rate, plan.hang_attempts
    ):
        time.sleep(plan.hang_seconds)


def maybe_io_error(site: str, token: str) -> None:
    """Raise a transient :class:`InjectedIOError` if the plan says so."""
    plan = _active
    if plan is None:
        return
    if plan.fires(
        site, token, _attempt, plan.io_error_rate, plan.io_error_attempts
    ):
        raise InjectedIOError(
            f"injected transient I/O failure at {site} for {token!r} "
            f"(attempt {_attempt})"
        )


def maybe_corrupt_file(path, token: str) -> bool:
    """Corrupt the bytes of a just-written file if the plan says so.

    Simulates a torn/bit-rotted write: the file is truncated and junk
    appended, so it no longer parses as JSON.  Returns True when the
    file was corrupted (callers verify and repair).
    """
    plan = _active
    if plan is None:
        return False
    if not plan.fires(
        "corrupt", token, _attempt, plan.corrupt_rate,
        plan.corrupt_attempts,
    ):
        return False
    try:
        data = path.read_bytes()
        torn = data[: max(1, (2 * len(data)) // 3)] + b"\x00<torn>"
        path.write_bytes(torn)
    except OSError:
        return False
    return True
