"""A minimal asyncio HTTP/1.1 layer -- stdlib only, no frameworks.

Just enough protocol for the job server: request parsing with hard
header/body limits (a malformed or oversized request is rejected before
any work is dispatched), JSON responses with ``Content-Length`` and
keep-alive, conditional-GET revalidation (``ETag`` /
``If-None-Match`` -> 304), and chunked transfer encoding for the
progress-event stream.

Everything speaks bytes at the ``asyncio.StreamReader`` /
``StreamWriter`` level; the routing and job semantics live in
:mod:`repro.server.app`.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, unquote, urlsplit

__all__ = [
    "DEFAULT_MAX_BODY",
    "MAX_HEADER_BYTES",
    "HTTPError",
    "HTTPRequest",
    "STATUS_REASONS",
    "error_body",
    "json_response",
    "read_request",
    "response_bytes",
    "send_chunk",
    "start_chunked",
]

#: Largest request body accepted (job descriptions are a few hundred
#: bytes; anything near this limit is abuse, not a job).
DEFAULT_MAX_BODY = 1 << 20

#: Largest request head (request line + headers) accepted.
MAX_HEADER_BYTES = 16 * 1024

STATUS_REASONS = {
    200: "OK",
    204: "No Content",
    304: "Not Modified",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    411: "Length Required",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
}


class HTTPError(Exception):
    """A request the server refuses -- carries the response status.

    Raised by the parsing layer (and the app's validators) *before* any
    job is dispatched; the connection handler turns it into a
    structured JSON error response.
    """

    def __init__(self, status: int, message: str, detail: str = "") -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.detail = detail


@dataclass
class HTTPRequest:
    """One parsed request: method, split target, headers, raw body."""

    method: str
    path: str
    query: dict = field(default_factory=dict)
    headers: dict = field(default_factory=dict)
    body: bytes = b""

    @property
    def segments(self) -> "tuple[str, ...]":
        """Non-empty, percent-decoded path segments."""
        return tuple(
            unquote(part) for part in self.path.split("/") if part
        )

    def header(self, name: str, default: str = "") -> str:
        return self.headers.get(name.lower(), default)

    @property
    def keep_alive(self) -> bool:
        return self.header("connection", "keep-alive").lower() != "close"

    def json(self) -> dict:
        """The body as a JSON object; structured 400 on anything else."""
        try:
            decoded = json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as err:
            raise HTTPError(
                400, "request body is not valid JSON", str(err)
            ) from None
        if not isinstance(decoded, dict):
            raise HTTPError(
                400,
                "request body must be a JSON object",
                f"got {type(decoded).__name__}",
            )
        return decoded


async def read_request(
    reader: asyncio.StreamReader, max_body: int = DEFAULT_MAX_BODY
) -> "HTTPRequest | None":
    """Parse one request off the stream.

    Returns None on a clean end-of-stream (the client closed an idle
    keep-alive connection); raises :class:`HTTPError` for anything the
    server refuses -- oversized heads/bodies are rejected from the
    ``Content-Length`` header alone, before a single body byte is read.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as err:
        if not err.partial:
            return None
        raise HTTPError(400, "truncated request head") from None
    except asyncio.LimitOverrunError:
        raise HTTPError(431, "request head too large") from None
    if len(head) > MAX_HEADER_BYTES:
        raise HTTPError(431, "request head too large")
    try:
        lines = head.decode("latin-1").split("\r\n")
        method, target, version = lines[0].split(" ", 2)
    except (UnicodeDecodeError, ValueError):
        raise HTTPError(400, "malformed request line") from None
    if not version.startswith("HTTP/1."):
        raise HTTPError(400, f"unsupported protocol {version!r}")
    headers: dict = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep or not name.strip():
            raise HTTPError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    split = urlsplit(target)
    request = HTTPRequest(
        method=method.upper(),
        path=split.path or "/",
        query=dict(parse_qsl(split.query)),
        headers=headers,
    )
    if "transfer-encoding" in headers:
        raise HTTPError(
            501, "chunked request bodies are not supported"
        )
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise HTTPError(
            400, f"bad Content-Length {length_text!r}"
        ) from None
    if length < 0:
        raise HTTPError(400, f"bad Content-Length {length_text!r}")
    if length > max_body:
        # Refused before reading: the body never enters memory.
        raise HTTPError(
            413,
            "request body too large",
            f"{length} bytes > limit {max_body}",
        )
    if length:
        try:
            request.body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise HTTPError(400, "request body shorter than its "
                            "Content-Length") from None
    return request


def response_bytes(
    status: int,
    body: bytes = b"",
    content_type: str = "application/json",
    headers: "tuple[tuple[str, str], ...]" = (),
    keep_alive: bool = True,
) -> bytes:
    """Serialize one complete non-chunked response."""
    reason = STATUS_REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}"]
    if status != 304:
        # 304 must not carry a body; Content-Length 0 plus the
        # revalidation headers is exactly what caches expect.
        lines.append(f"Content-Type: {content_type}")
    lines.append(f"Content-Length: {len(body)}")
    lines.append(
        "Connection: " + ("keep-alive" if keep_alive else "close")
    )
    for name, value in headers:
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + body


def json_response(
    status: int,
    payload,
    headers: "tuple[tuple[str, str], ...]" = (),
    keep_alive: bool = True,
) -> bytes:
    """A JSON response (deterministic bytes for identical payloads)."""
    body = (json.dumps(payload, indent=None) + "\n").encode("utf-8")
    return response_bytes(
        status, body, headers=headers, keep_alive=keep_alive
    )


def error_body(status: int, message: str, detail: str = "") -> dict:
    """The structured error payload every 4xx/5xx carries."""
    error = {"status": status, "message": message}
    if detail:
        error["detail"] = detail
    return {"error": error}


def start_chunked(
    status: int = 200,
    content_type: str = "application/x-ndjson",
    headers: "tuple[tuple[str, str], ...]" = (),
) -> bytes:
    """Head of a chunked response (the event stream's opener)."""
    reason = STATUS_REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        "Transfer-Encoding: chunked",
        "Connection: close",
    ]
    for name, value in headers:
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


def send_chunk(data: bytes) -> bytes:
    """One chunk frame; an empty chunk terminates the stream."""
    return f"{len(data):x}\r\n".encode("latin-1") + data + b"\r\n"
