"""Tuning-as-a-service: the asyncio job server.

:class:`JobServer` is an HTTP front-end over the existing experiment
machinery -- the same :class:`~repro.runner.store.JobSpec` identity,
the same :func:`~repro.runner.engine.execute_job` worker entry, the
same sharded :class:`~repro.runner.store.ResultStore` -- so a result
computed over HTTP is byte-identical (same store key, same envelope)
to one computed by ``repro run`` or the serial drivers.

Control plane (all JSON):

* ``POST /jobs``          -- submit a job description; blocks until the
  result is ready (``?wait=false`` returns 202 + the job id instead).
  Identical concurrent submissions are deduplicated: the first becomes
  the *leader* and computes once; every other request attaches to the
  leader's in-flight record and is answered from its result.
* ``GET /jobs/<id>``      -- the job's result (or 202 while running),
  with ``ETag``/``If-None-Match`` revalidation: a warm re-GET whose
  payload is unchanged costs a 304, not a payload transfer.
* ``GET /jobs/<id>/events`` -- chunked NDJSON stream of the job's
  :class:`~repro.runner.engine.RunLedger` events (attempt/retry/
  failure/done), live while the job runs.
* ``GET /healthz`` / ``/stats`` / ``/metrics`` -- liveness, the
  :class:`~repro.server.stats.ServerStats` + store counters as JSON,
  and the same counters as Prometheus-style text.

Dedup correctness leans on the event loop's single-threadedness: the
leader claims the key via :meth:`ResultStore.get_or_begin` and
registers its record *synchronously* (no ``await`` in between), so a
concurrent duplicate -- which only runs after the leader yields --
always finds either the claim or the finished entry, never a gap.

Validation happens entirely in the front door: a malformed body,
unknown application, scale, type system, variant or strategy is a
structured 4xx and never touches the executor.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import asdict

from repro.apps import APP_NAMES, SCALES
from repro.runner import (
    JobSpec,
    ResultStore,
    RetryPolicy,
    RunLedger,
    execute_job,
    payload_checksum,
)
from repro.session import Session
from repro.telemetry import MetricsRegistry
from repro.telemetry import trace as _trace
from repro.tuning import resolve_strategy, type_system, type_system_names
from repro.util import emit, status_line

from .http import (
    DEFAULT_MAX_BODY,
    HTTPError,
    HTTPRequest,
    error_body,
    json_response,
    read_request,
    response_bytes,
    send_chunk,
    start_chunked,
)
from .stats import ServerStats, register_metrics

__all__ = ["JobServer", "BackgroundServer", "JobRecord"]

#: Client-friendly aliases for job kinds ("tune me this" reads better
#: than "flow" from outside the codebase).
KIND_ALIASES = {"tune": "flow", "tuning": "flow"}

#: Every key a job description may carry.
JOB_FIELDS = (
    "kind", "app", "scale", "type_system", "precision", "variant",
    "strategy", "cores", "fpu_ratio",
)


class JobRecord:
    """One submitted job's life: ledger, result, and waiter wake-ups.

    Records outlive their computation (``GET /jobs/<id>`` serves them
    until the server stops), bounded by the number of *distinct* jobs a
    server sees -- duplicates share one record.
    """

    def __init__(self, job_id: str, spec: JobSpec) -> None:
        self.id = job_id
        self.spec = spec
        self.ledger = RunLedger()
        self.done = asyncio.Event()
        self.updated = asyncio.Event()
        self.payload: "dict | None" = None
        self.source = ""  #: "computed" | "store" once done
        self.error = ""
        self.seconds = 0.0
        #: The job's ``server.job`` span (telemetry on, leader only).
        #: Held off the thread-local span stack: job lifetimes
        #: interleave freely on the event-loop thread.
        self.span = None
        self.trace_id: "str | None" = None
        self.span_id: "str | None" = None

    def record(self, event: str, attempt: int = 0, detail: str = "") -> None:
        self.ledger.record(
            event, self.spec, attempt, detail,
            trace_id=self.trace_id, span_id=self.span_id,
        )
        self.updated.set()

    def finish(self) -> None:
        self.done.set()
        self.updated.set()  # wake streamers blocked past the last event

    def status(self) -> str:
        if not self.done.is_set():
            return "running"
        return "failed" if self.error else "done"

    def describe(self) -> dict:
        return {
            "id": self.id,
            "kind": self.spec.kind,
            "spec": asdict(self.spec),
            "status": self.status(),
            "events": len(self.ledger.events),
        }


class JobServer:
    """The asyncio HTTP job server (see module docstring).

    Parameters
    ----------
    session:
        The session results are computed under; workers rebuild it via
        ``Session.from_spec`` exactly like the pool runner does.
    scale:
        Default problem scale for job bodies that omit one.
    store_dir / cache_dir:
        Result-store root and tuning-cache directory (defaults match
        the CLI: ``results/store`` and the session's cache).
    jobs:
        Executor width (concurrent computations).
    executor:
        ``"process"`` (a :class:`ProcessPoolExecutor`; the default for
        ``jobs > 1``) or ``"thread"`` (in-process threads -- what tests
        use so a monkeypatched ``execute_job`` is visible; safe because
        sessions keep per-thread context stacks).
    retry:
        The :class:`RetryPolicy` around executor attempts (default
        policy if None).
    max_body:
        Request-body ceiling; larger ``Content-Length`` is 413'd before
        the body is read.
    log_requests:
        Emit one :func:`repro.util.status_line` per request (the same
        formatter ``repro run`` progress uses), flushed even on pipes.
    """

    def __init__(
        self,
        session: "Session | None" = None,
        scale: str = "tiny",
        store_dir=None,
        cache_dir=None,
        jobs: int = 1,
        host: str = "127.0.0.1",
        port: int = 0,
        executor: "str | None" = None,
        retry: "RetryPolicy | None" = None,
        max_body: int = DEFAULT_MAX_BODY,
        log_requests: bool = False,
    ) -> None:
        self.session = session if session is not None else Session()
        self.scale = scale
        self.jobs = max(1, int(jobs))
        self.host = host
        self.port = port
        if executor not in (None, "process", "thread"):
            raise ValueError(f"unknown executor kind {executor!r}")
        self.executor_kind = executor or (
            "process" if self.jobs > 1 else "thread"
        )
        self.retry = retry if retry is not None else RetryPolicy()
        self.max_body = max_body
        self.log_requests = log_requests
        self.cache_dir = (
            cache_dir if cache_dir is not None else self.session.cache_dir
        )
        self.store = ResultStore(
            store_dir,
            backend=self.session.backend.name,
            env=self.session.environment_fingerprint(),
        )
        self.stats = ServerStats()
        # One registry feeds /stats (grouped JSON) and /metrics
        # (exposition text); the two render the same instruments and
        # cannot drift.
        self.registry = MetricsRegistry()
        register_metrics(self.registry, self.stats, self.store.stats)
        # Request-latency histogram only when telemetry is on: the
        # telemetry-off /stats and /metrics bodies predate the registry
        # and must stay byte-stable.
        self._request_seconds = (
            self.registry.histogram(
                "repro_server_request_seconds",
                group="telemetry",
                short="request_seconds",
            )
            if _trace.enabled()
            else None
        )
        # Fail fast on a session that cannot cross to workers.
        self._session_spec = self.session.spec()
        self._session_spec["cache_dir"] = str(self.cache_dir)
        self._jobs: dict[str, JobRecord] = {}
        self._compute_tasks: set = set()
        self._conn_tasks: set = set()
        self._server: "asyncio.Server | None" = None
        self._executor = None
        self._loop: "asyncio.AbstractEventLoop | None" = None
        self._closing = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "JobServer":
        self._loop = asyncio.get_running_loop()
        if self.executor_kind == "process":
            self._executor = ProcessPoolExecutor(max_workers=self.jobs)
        else:
            self._executor = ThreadPoolExecutor(
                max_workers=self.jobs,
                thread_name_prefix="repro-server-job",
            )
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def shutdown(self, drain: bool = True) -> None:
        """Stop accepting work; with ``drain``, finish what's in flight.

        New job submissions are refused with 503 the moment shutdown
        begins; in-flight computations run to completion (their waiters
        get real responses) before the executor goes down.
        """
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if drain and self._compute_tasks:
            await asyncio.gather(
                *list(self._compute_tasks), return_exceptions=True
            )
        if drain and self._conn_tasks:
            # Give connected clients a moment to read their responses.
            await asyncio.wait(list(self._conn_tasks), timeout=5.0)
        leftovers = list(self._conn_tasks)
        for task in leftovers:
            task.cancel()
        if leftovers:
            await asyncio.gather(*leftovers, return_exceptions=True)
        if self._executor is not None:
            self._executor.shutdown(wait=drain, cancel_futures=not drain)
        _trace.flush()  # request/job spans are durable once we return

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        try:
            await self._serve_connection(reader, writer)
        except asyncio.CancelledError:
            # Idle keep-alive connections are cancelled at shutdown;
            # that is this task's clean exit, not an error to propagate.
            pass
        finally:
            self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _serve_connection(self, reader, writer) -> None:
        while True:
            try:
                request = await read_request(reader, self.max_body)
            except HTTPError as err:
                # Framing-level refusal: the stream may be desynced,
                # answer and hang up.
                self.stats.requests += 1
                self.stats.bad_requests += 1
                await self._write(
                    writer,
                    json_response(
                        err.status,
                        error_body(err.status, err.message, err.detail),
                        keep_alive=False,
                    ),
                )
                self._log(err.status, "?", "?", 0.0)
                return
            except (ConnectionError, OSError):
                return
            if request is None:
                return  # clean keep-alive close
            self.stats.requests += 1
            started = time.perf_counter()
            # push=False: request lifetimes interleave across awaits on
            # the one loop thread, so they stay off the context stack.
            sp = _trace.start_span(
                "server.request", push=False,
                method=request.method, path=request.path,
            )
            try:
                status, close = await self._dispatch(request, writer)
            except HTTPError as err:
                self.stats.bad_requests += 1
                await self._write(
                    writer,
                    json_response(
                        err.status,
                        error_body(err.status, err.message, err.detail),
                        keep_alive=request.keep_alive,
                    ),
                )
                status, close = err.status, not request.keep_alive
            except (ConnectionError, OSError):
                if sp is not None:
                    sp.attrs["error"] = "connection"
                    _trace.end_span(sp)
                return
            elapsed = time.perf_counter() - started
            if sp is not None:
                sp.attrs["status"] = status
                _trace.end_span(sp)
            if self._request_seconds is not None:
                self._request_seconds.observe(elapsed)
            self._log(status, request.method, request.path, elapsed)
            if close or not request.keep_alive:
                return

    async def _write(self, writer, data: bytes) -> None:
        writer.write(data)
        await writer.drain()

    def _log(
        self, status: int, method: str, path: str, seconds: float
    ) -> None:
        if self.log_requests:
            emit(status_line(str(status), method, path, seconds))

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _dispatch(
        self, request: HTTPRequest, writer
    ) -> "tuple[int, bool]":
        segments = request.segments
        if request.method == "POST":
            if segments == ("jobs",):
                return await self._post_job(request, writer)
            raise HTTPError(404, f"no such endpoint {request.path!r}")
        if request.method != "GET":
            raise HTTPError(
                405, f"method {request.method} not supported"
            )
        if segments == ("healthz",):
            return await self._respond_json(
                writer, request, 200, {"ok": True}
            )
        if segments == ("stats",):
            return await self._respond_json(
                writer, request, 200, self.registry.grouped_snapshot()
            )
        if segments == ("metrics",):
            await self._write(
                writer,
                response_bytes(
                    200,
                    self.metrics_text().encode(),
                    content_type="text/plain; version=0.0.4",
                    keep_alive=request.keep_alive,
                ),
            )
            return 200, False
        if len(segments) == 2 and segments[0] == "jobs":
            return await self._get_job(request, writer, segments[1])
        if (
            len(segments) == 3
            and segments[0] == "jobs"
            and segments[2] == "events"
        ):
            return await self._stream_events(request, writer, segments[1])
        raise HTTPError(404, f"no such endpoint {request.path!r}")

    # ------------------------------------------------------------------
    # Job submission (the dedup front door)
    # ------------------------------------------------------------------
    async def _post_job(
        self, request: HTTPRequest, writer
    ) -> "tuple[int, bool]":
        if self._closing:
            raise HTTPError(503, "server is shutting down")
        spec = self.parse_job(request.json())
        job_id = self.job_id(spec)
        # Atomic front door: warm hit, fresh claim, or attach-to-leader.
        # No await between the claim and the record registration, so
        # duplicates always find the leader's record.
        payload, leader = self.store.get_or_begin(spec)
        if payload is not None:
            self.stats.store_hits += 1
            return await self._respond_result(
                writer, request, job_id, spec, payload, "store"
            )
        if leader:
            record = JobRecord(job_id, spec)
            record.span = _trace.start_span(
                "server.job", push=False, job=spec.describe()
            )
            if record.span is not None:
                record.trace_id = record.span.trace_id
                record.span_id = record.span.span_id
            self._jobs[job_id] = record
            self.stats.in_flight += 1
            task = self._loop.create_task(self._compute(record))
            self._compute_tasks.add(task)
            task.add_done_callback(self._compute_tasks.discard)
        else:
            record = self._jobs.get(job_id)
            if record is None:  # pragma: no cover - defensive
                raise HTTPError(
                    503, "job is in flight outside this server"
                )
            self.stats.deduped += 1
        if request.query.get("wait", "true").lower() == "false":
            return await self._respond_json(
                writer, request, 202, record.describe()
            )
        await record.done.wait()
        # Waiters report "deduped" provenance: their answer exists
        # because they attached to the leader, not because they hit the
        # store or computed anything.
        return await self._finished_response(
            writer, request, record,
            source=record.source if leader else "deduped",
        )

    async def _get_job(
        self, request: HTTPRequest, writer, job_id: str
    ) -> "tuple[int, bool]":
        record = self._jobs.get(job_id)
        if record is None:
            raise HTTPError(404, f"unknown job {job_id!r}")
        if not record.done.is_set():
            return await self._respond_json(
                writer, request, 202, record.describe()
            )
        return await self._finished_response(writer, request, record)

    async def _finished_response(
        self, writer, request, record: JobRecord,
        source: "str | None" = None,
    ) -> "tuple[int, bool]":
        if record.error:
            return await self._respond_json(
                writer, request, 500,
                error_body(500, "job failed", record.error),
            )
        return await self._respond_result(
            writer, request, record.id, record.spec, record.payload,
            source if source is not None else record.source,
        )

    async def _respond_result(
        self, writer, request, job_id: str, spec: JobSpec,
        payload: dict, source: str,
    ) -> "tuple[int, bool]":
        """Serve a finished payload with ETag revalidation.

        The ETag is the payload's canonical-JSON checksum -- the same
        value the store envelope carries -- so it revalidates content,
        not freshness heuristics; the response body is a pure function
        of (id, spec, payload), which keeps repeat GETs byte-identical.
        The request's provenance travels in ``X-Repro-Source``
        ("computed" | "store" | "deduped") so it cannot perturb the
        body bytes.
        """
        etag = f'"{payload_checksum(payload)}"'
        headers = (("ETag", etag), ("X-Repro-Source", source))
        if request.header("if-none-match") == etag:
            self.stats.not_modified += 1
            await self._write(
                writer,
                response_bytes(
                    304, headers=headers, keep_alive=request.keep_alive
                ),
            )
            return 304, False
        body = {
            "id": job_id,
            "kind": spec.kind,
            "spec": asdict(spec),
            "status": "done",
            "payload": payload,
        }
        await self._write(
            writer,
            json_response(
                200, body, headers=headers, keep_alive=request.keep_alive
            ),
        )
        return 200, False

    async def _respond_json(
        self, writer, request, status: int, payload: dict
    ) -> "tuple[int, bool]":
        await self._write(
            writer,
            json_response(
                status, payload, keep_alive=request.keep_alive
            ),
        )
        return status, False

    # ------------------------------------------------------------------
    # The event stream
    # ------------------------------------------------------------------
    async def _stream_events(
        self, request: HTTPRequest, writer, job_id: str
    ) -> "tuple[int, bool]":
        record = self._jobs.get(job_id)
        if record is None:
            raise HTTPError(404, f"unknown job {job_id!r}")
        await self._write(writer, start_chunked())
        index = 0
        while True:
            events = record.ledger.events
            while index < len(events):
                event = events[index]
                line = json.dumps(event.to_payload()) + "\n"
                await self._write(writer, send_chunk(line.encode()))
                index += 1
            if record.done.is_set() and index >= len(record.ledger.events):
                break
            record.updated.clear()
            if index < len(record.ledger.events) or record.done.is_set():
                continue  # something landed between drain and clear
            await record.updated.wait()
        final = json.dumps({
            "event": "end", "status": record.status(),
            "detail": record.error,
        }) + "\n"
        await self._write(writer, send_chunk(final.encode()))
        await self._write(writer, send_chunk(b""))
        return 200, True  # chunked streams close the connection

    # ------------------------------------------------------------------
    # Computation (the executor bridge)
    # ------------------------------------------------------------------
    async def _compute(self, record: JobRecord) -> None:
        """Run one claimed job on the executor, with bounded retries.

        Reuses :func:`execute_job` -- the pool runner's worker entry --
        verbatim, which is what makes a server-computed store envelope
        byte-identical to a serial ``repro run`` one.  The store claim
        is released in ``finally`` no matter how the attempt ends, so a
        failure can never wedge the key for later requests.
        """
        runner_spec = self._runner_spec(
            record.spec, parent_span_id=record.span_id
        )
        attempt = 0
        try:
            while True:
                record.record("attempt", attempt)
                try:
                    outcome = await self._loop.run_in_executor(
                        self._executor, execute_job, runner_spec,
                        record.spec, attempt,
                    )
                except asyncio.CancelledError:
                    record.error = "cancelled at shutdown"
                    record.record("failure", attempt, record.error)
                    self.stats.failed += 1
                    raise
                except Exception as exc:  # noqa: BLE001 - classified
                    if (
                        self.retry.retriable(exc)
                        and attempt < self.retry.max_retries
                    ):
                        record.record("retry", attempt, repr(exc))
                        await asyncio.sleep(self.retry.delay(attempt))
                        attempt += 1
                        continue
                    record.error = repr(exc)
                    record.record("failure", attempt, repr(exc))
                    self.stats.failed += 1
                    return
                record.payload = outcome["payload"]
                record.seconds = outcome["seconds"]
                record.source = (
                    "computed" if outcome["computed"] else "store"
                )
                if outcome["computed"]:
                    self.stats.computed += 1
                else:
                    # The worker's store re-check found it (warm store,
                    # or a concurrent campaign won the race).
                    self.stats.store_hits += 1
                record.record(
                    "done", attempt, f"{outcome['seconds']:.3f}s"
                )
                return
        finally:
            self.store.finish(record.spec)
            self.stats.in_flight -= 1
            if record.span is not None:
                record.span.attrs["source"] = record.source or "failed"
                _trace.end_span(record.span)
            record.finish()

    def _runner_spec(
        self, spec: JobSpec, parent_span_id: "str | None" = None
    ) -> dict:
        ts_names = {spec.type_system} if spec.type_system else set()
        telemetry = _trace.propagation_payload()
        if telemetry is not None:
            # Worker spans parent under this job's server.job span, not
            # under whatever happens to be open on the loop thread.
            telemetry["parent_span_id"] = parent_span_id
        return {
            "session": dict(self._session_spec),
            "store_root": str(self.store.root),
            "store_env": self.store.env,
            "store_version": self.store.version,
            "type_systems": [
                type_system(name).to_payload()
                for name in sorted(ts_names)
            ],
            "telemetry": telemetry,
        }

    # ------------------------------------------------------------------
    # Job descriptions
    # ------------------------------------------------------------------
    def parse_job(self, body: dict) -> JobSpec:
        """A validated :class:`JobSpec` from a request body.

        Every refusal is a structured 4xx raised *here*, before any
        claim is taken or executor touched.
        """
        unknown = sorted(set(body) - set(JOB_FIELDS))
        if unknown:
            raise HTTPError(
                422, f"unknown job fields: {', '.join(unknown)}",
                f"known fields: {', '.join(JOB_FIELDS)}",
            )
        kind = body.get("kind", "flow")
        kind = KIND_ALIASES.get(kind, kind)
        if kind not in ("flow", "report", "cluster"):
            raise HTTPError(
                422, f"unknown job kind {body.get('kind')!r}",
                "known kinds: flow (alias: tune), report, cluster",
            )
        app = body.get("app")
        if app not in APP_NAMES:
            raise HTTPError(
                422, f"unknown application {app!r}",
                f"known applications: {', '.join(APP_NAMES)}",
            )
        scale = body.get("scale", self.scale)
        if scale not in SCALES:
            raise HTTPError(
                422, f"unknown scale {scale!r}",
                f"known scales: {', '.join(SCALES)}",
            )
        ts_name = body.get("type_system", "")
        if ts_name or kind in ("flow", "cluster"):
            try:
                ts_name = type_system(str(ts_name)).name
            except KeyError as err:
                raise HTTPError(
                    422, f"unknown type system {ts_name!r}",
                    f"known type systems: "
                    f"{', '.join(type_system_names())}",
                ) from err
        try:
            precision = float(body.get("precision", 0.0))
        except (TypeError, ValueError):
            raise HTTPError(
                422,
                f"precision must be a number, got "
                f"{body.get('precision')!r}",
            ) from None
        strategy = body.get("strategy")
        if strategy is not None:
            try:
                strategy = resolve_strategy(str(strategy)).name
            except KeyError as err:
                raise HTTPError(
                    422, f"unknown tuning strategy {strategy!r}"
                ) from err
        try:
            cores = int(body.get("cores", 1))
            fpu_ratio = int(body.get("fpu_ratio", 1))
        except (TypeError, ValueError):
            raise HTTPError(
                422, "cores/fpu_ratio must be integers"
            ) from None
        kwargs = {
            "variant": str(body.get("variant", "")),
            "cores": cores,
            "fpu_ratio": fpu_ratio,
        }
        if strategy is not None:
            kwargs["strategy"] = strategy
        try:
            spec = JobSpec(kind, app, scale, ts_name, precision, **kwargs)
        except ValueError as err:
            raise HTTPError(422, str(err)) from None
        if spec.kind == "report":
            from repro.runner import REPORT_VARIANTS

            if spec.variant not in REPORT_VARIANTS:
                raise HTTPError(
                    422, f"unknown report variant {spec.variant!r}",
                    f"known variants: "
                    f"{', '.join(sorted(REPORT_VARIANTS))}",
                )
        return spec

    def job_id(self, spec: JobSpec) -> str:
        """A stable, collision-free id for a job's store identity.

        The store file-name stem (human-readable) plus a short digest
        over the *exact* spec -- filenames render precision via ``%g``,
        so two nearby precisions can share a stem; the digest keeps
        their ids (and thus their in-flight records) apart.
        """
        stem = self.store.name(spec)[: -len(".json")]
        exact = json.dumps(
            dict(
                asdict(spec),
                backend=self.store.backend, env=self.store.env,
            ),
            sort_keys=True,
        )
        digest = hashlib.sha256(exact.encode()).hexdigest()[:8]
        return f"{stem}-{digest}"

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def metrics_text(self) -> str:
        """Prometheus-style rendering of the server's registry.

        Byte-identical to the pre-registry hand-rolled renderer when
        telemetry is off; with telemetry on, the request-latency
        histogram series joins the same exposition.
        """
        return self.registry.render()


class BackgroundServer:
    """A :class:`JobServer` on its own event-loop thread.

    The blocking world's handle on the server: tests, the load driver
    and the CI smoke all run the server in-process and talk to it over
    real sockets.  Use as a context manager; exit drains in-flight jobs
    and joins the thread.
    """

    def __init__(self, **kwargs) -> None:
        self._kwargs = kwargs
        self.server: "JobServer | None" = None
        self.host = ""
        self.port = 0
        self._thread: "threading.Thread | None" = None
        self._ready = threading.Event()
        self._stop: "asyncio.Event | None" = None
        self._loop: "asyncio.AbstractEventLoop | None" = None
        self._error: "BaseException | None" = None
        self._drain = True

    def start(self) -> "BackgroundServer":
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main()),
            name="repro-server",
            daemon=True,
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("job server did not come up")
        if self._error is not None:
            raise RuntimeError(
                f"job server failed to start: {self._error!r}"
            )
        return self

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        try:
            self.server = JobServer(**self._kwargs)
            await self.server.start()
        except BaseException as err:  # noqa: BLE001 - reported to caller
            self._error = err
            self._ready.set()
            return
        self.host, self.port = self.server.host, self.server.port
        self._ready.set()
        await self._stop.wait()
        await self.server.shutdown(drain=self._drain)

    def stop(self, drain: bool = True) -> None:
        if self._thread is None or self._loop is None:
            return
        self._drain = drain
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=60)
        self._thread = None

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False
