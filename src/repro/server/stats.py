"""Request-level counters for the job server.

:class:`ServerStats` counts what the *HTTP front-end* did; the store's
own :class:`~repro.runner.store.StoreStats` counts what the data plane
did.  ``/stats`` serves both side by side and ``/metrics`` renders both
as Prometheus-style text, so a load test can split "requests that never
reached the pool" (bad requests, 304 revalidations, warm hits, dedup'd
waiters) from "computations actually run".
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ServerStats", "register_metrics"]


@dataclass
class ServerStats:
    """One server's request accounting.

    ``computed`` counts jobs that actually ran on the executor;
    ``store_hits`` counts requests served from the warm store (either
    at the front door or by a worker's store re-check); ``deduped``
    counts requests that attached to an identical in-flight computation
    instead of starting their own; ``not_modified`` counts conditional
    GETs answered 304 without a payload.  The four are disjoint, so
    their sum plus ``failed`` accounts for every job request.
    """

    requests: int = 0
    bad_requests: int = 0
    not_modified: int = 0
    computed: int = 0
    store_hits: int = 0
    deduped: int = 0
    failed: int = 0
    in_flight: int = 0

    def to_payload(self) -> dict:
        return {
            "requests": self.requests,
            "bad_requests": self.bad_requests,
            "not_modified": self.not_modified,
            "computed": self.computed,
            "store_hits": self.store_hits,
            "deduped": self.deduped,
            "failed": self.failed,
            "in_flight": self.in_flight,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "ServerStats":
        return cls(
            requests=payload["requests"],
            bad_requests=payload["bad_requests"],
            not_modified=payload["not_modified"],
            computed=payload["computed"],
            store_hits=payload["store_hits"],
            deduped=payload["deduped"],
            failed=payload["failed"],
            in_flight=payload["in_flight"],
        )


def register_metrics(registry, stats: ServerStats, store_stats) -> None:
    """Mirror server + store counters into a metrics registry.

    Every field becomes a callback :class:`~repro.telemetry.Gauge`
    reading the live counter -- no double bookkeeping, and ``/stats``
    (the registry's grouped snapshot) can never drift from ``/metrics``
    (its exposition rendering).  Registration follows ``to_payload``
    order, which keeps the rendered ``repro_server_*`` /
    ``repro_store_*`` lines byte-compatible with the pre-registry
    renderer.

    ``store_stats`` is a zero-argument callable returning the store's
    current :class:`~repro.runner.store.StoreStats` (the store rebuilds
    its stats object, so gauges must re-fetch per read).
    """
    for name in stats.to_payload():
        registry.gauge(
            f"repro_server_{name}",
            fn=lambda n=name: getattr(stats, n),
            group="server",
            short=name,
        )
    for name in store_stats().to_payload():
        registry.gauge(
            f"repro_store_{name}",
            fn=lambda n=name: store_stats().to_payload()[n],
            group="store",
            short=name,
        )
