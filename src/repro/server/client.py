"""A small blocking client for the job server (stdlib ``http.client``).

The load driver, the CI smoke and :class:`~repro.session.Session`
helpers all talk to the server through this; it keeps one persistent
keep-alive connection per instance, so a closed-loop benchmark client
measures request cost, not TCP handshakes.
"""

from __future__ import annotations

import http.client
import json
from dataclasses import dataclass, field

__all__ = ["Response", "ServerClient"]


@dataclass
class Response:
    """One HTTP exchange's outcome, body pre-decoded when JSON."""

    status: int
    headers: dict = field(default_factory=dict)
    body: bytes = b""

    @property
    def json(self) -> "dict | None":
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return None

    @property
    def etag(self) -> str:
        return self.headers.get("etag", "")

    @property
    def source(self) -> str:
        return self.headers.get("x-repro-source", "")


class ServerClient:
    """Blocking HTTP client bound to one server address.

    Not thread-safe (one underlying connection); give each load-driver
    thread its own instance.
    """

    def __init__(
        self, host: str, port: int, timeout: float = 300.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: "http.client.HTTPConnection | None" = None

    # ------------------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    def _request(
        self,
        method: str,
        path: str,
        body: "bytes | None" = None,
        headers: "dict | None" = None,
    ) -> Response:
        send = dict(headers or {})
        if body is not None:
            send.setdefault("Content-Type", "application/json")
        conn = self._connection()
        try:
            conn.request(method, path, body=body, headers=send)
            raw = conn.getresponse()
        except (ConnectionError, http.client.HTTPException, OSError):
            # The server may have closed an idle keep-alive connection;
            # one reconnect attempt is part of normal HTTP/1.1 life.
            self.close()
            conn = self._connection()
            conn.request(method, path, body=body, headers=send)
            raw = conn.getresponse()
        payload = raw.read()
        response = Response(
            status=raw.status,
            headers={k.lower(): v for k, v in raw.getheaders()},
            body=payload,
        )
        if raw.headers.get("Connection", "").lower() == "close":
            self.close()
        return response

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def post_job(
        self,
        job: dict,
        etag: str = "",
        wait: bool = True,
    ) -> Response:
        """Submit a job description; blocks until done by default."""
        path = "/jobs" if wait else "/jobs?wait=false"
        headers = {"If-None-Match": etag} if etag else {}
        return self._request(
            "POST", path,
            body=json.dumps(job).encode("utf-8"),
            headers=headers,
        )

    def post_raw(self, body: bytes, headers: "dict | None" = None) -> Response:
        """Submit raw bytes to ``/jobs`` (malformed-input tests)."""
        return self._request("POST", "/jobs", body=body, headers=headers)

    def get_job(self, job_id: str, etag: str = "") -> Response:
        headers = {"If-None-Match": etag} if etag else {}
        return self._request("GET", f"/jobs/{job_id}", headers=headers)

    def events(self, job_id: str) -> "list[dict]":
        """The job's full event stream (blocks until it ends)."""
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            conn.request("GET", f"/jobs/{job_id}/events")
            raw = conn.getresponse()
            if raw.status != 200:
                body = raw.read()
                raise RuntimeError(
                    f"event stream refused: {raw.status} {body!r}"
                )
            # http.client undoes the chunked framing; the payload is
            # newline-delimited JSON.
            lines = raw.read().decode("utf-8").splitlines()
        finally:
            conn.close()
        return [json.loads(line) for line in lines if line.strip()]

    def health(self) -> Response:
        return self._request("GET", "/healthz")

    def stats(self) -> Response:
        return self._request("GET", "/stats")

    def metrics(self) -> str:
        return self._request("GET", "/metrics").body.decode("utf-8")
