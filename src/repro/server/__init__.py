"""Tuning-as-a-service: an asyncio HTTP front-end over the runner.

>>> from repro.server import BackgroundServer, ServerClient
>>> with BackgroundServer(scale="tiny") as bg:          # doctest: +SKIP
...     client = ServerClient(bg.host, bg.port)
...     reply = client.post_job(
...         {"kind": "tune", "app": "conv", "type_system": "V2",
...          "precision": 1e-1}
...     )
...     reply.json["payload"]["binding"]

The server maps JSON job descriptions onto the existing
:class:`~repro.runner.store.JobSpec` identity and dispatches them to
:func:`~repro.runner.engine.execute_job` on an executor, so results --
and their on-disk store envelopes -- are byte-identical to serial
``repro run`` ones.  Identical concurrent requests are deduplicated to
a single computation; warm results revalidate with ``ETag``/304.
Stdlib only: no web framework, no new dependencies.
"""

from .app import BackgroundServer, JobRecord, JobServer
from .client import Response, ServerClient
from .http import (
    DEFAULT_MAX_BODY,
    HTTPError,
    HTTPRequest,
    error_body,
    json_response,
    read_request,
)
from .stats import ServerStats

__all__ = [
    "BackgroundServer",
    "JobRecord",
    "JobServer",
    "Response",
    "ServerClient",
    "ServerStats",
    "DEFAULT_MAX_BODY",
    "HTTPError",
    "HTTPRequest",
    "error_body",
    "json_response",
    "read_request",
]
