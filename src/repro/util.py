"""Small shared utilities (no repro-internal imports).

Currently: crash/concurrency-safe JSON persistence (plus cleanup of
the temp residue a killed writer leaves behind), shared by the tuning
cache and the experiment runner's result store; and line-oriented
progress/log output shared by ``repro run`` and the job server.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import time
from pathlib import Path

__all__ = [
    "write_json_atomic",
    "clean_stale_temps",
    "emit",
    "status_line",
]


def emit(text: str, stream=None) -> None:
    """Write one output line and flush unconditionally.

    Progress and request-log lines must land immediately even when
    stdout is a pipe (CI logs, ``repro serve`` behind a supervisor,
    ``repro run | tee``): block buffering would sit on partial output
    until the process exits.  ``print(..., flush=True)`` only flushes
    its own line; routing *every* line-oriented status write through
    here keeps interleaved writers (progress callback + summary) in
    order too.
    """
    stream = sys.stdout if stream is None else stream
    stream.write(text + "\n")
    stream.flush()


def status_line(
    head: str, label: str, text: str, seconds: float
) -> str:
    """One aligned status line: ``[head] label text  1.2s``.

    The shared formatter behind ``repro run`` per-job progress and the
    job server's request log, so the two render identically and a
    combined log stays scannable.
    """
    return f"  [{head}] {label:5.5s} {text:44s} {seconds:6.1f}s"


def write_json_atomic(path: Path, payload: dict, indent: int = 2) -> None:
    """Write JSON so readers never observe a half-written file.

    The payload goes to a temporary file in the *same* directory (so the
    rename cannot cross filesystems) and is moved into place with
    :func:`os.replace`, which is atomic on POSIX and Windows.  Concurrent
    writers may race, but the loser simply overwrites the winner with
    identical content; a reader sees either the old file, the new file,
    or no file -- never a torn one.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{path.name}.", suffix=".tmp", dir=path.parent
    )
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle, indent=indent)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def clean_stale_temps(
    directory: Path, ttl_s: float = 3600.0, pattern: str = "*.tmp"
) -> int:
    """Remove abandoned :func:`write_json_atomic` temp files.

    A writer killed between the temp write and the rename leaves a
    ``.<name>.<random>.tmp`` file behind; the rename's atomicity means
    the *target* is never torn, but the residue accumulates.  Files
    matching ``pattern`` older than ``ttl_s`` seconds are deleted
    (recursively); younger ones are presumed to belong to a live
    concurrent writer and are left alone.  Returns the removal count;
    never raises (a racing writer may legitimately win the unlink).
    """
    directory = Path(directory)
    if not directory.is_dir():
        return 0
    removed = 0
    cutoff = time.time() - ttl_s
    for tmp in directory.rglob(pattern):
        try:
            if tmp.stat().st_mtime <= cutoff:
                tmp.unlink()
                removed += 1
        except OSError:
            continue
    return removed
