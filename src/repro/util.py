"""Small shared utilities (no repro-internal imports).

Currently: crash/concurrency-safe JSON persistence, shared by the
tuning cache and the experiment runner's result store.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

__all__ = ["write_json_atomic"]


def write_json_atomic(path: Path, payload: dict, indent: int = 2) -> None:
    """Write JSON so readers never observe a half-written file.

    The payload goes to a temporary file in the *same* directory (so the
    rename cannot cross filesystems) and is moved into place with
    :func:`os.replace`, which is atomic on POSIX and Windows.  Concurrent
    writers may race, but the loser simply overwrites the winner with
    identical content; a reader sees either the old file, the new file,
    or no file -- never a torn one.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{path.name}.", suffix=".tmp", dir=path.parent
    )
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle, indent=indent)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
