"""Mini-ISA of the PULPino-like virtual platform.

A RISC-V-flavoured dynamic instruction stream: the kernel builders in
:mod:`repro.hardware.program` emit these instructions while computing the
application functionally, and :mod:`repro.hardware.cpu` replays them
through an in-order pipeline timing model.

The instruction classes mirror what an RI5CY-class core executes:

* ``ALU``/``LI`` -- single-cycle integer work (addressing, counters);
* ``LOAD``/``STORE`` -- single-cycle TCDM accesses with one cycle of
  load-use latency; RI5CY-style post-incrementing addressing is assumed,
  so streaming accesses need no separate address arithmetic;
* ``FP`` -- transprecision-FPU arithmetic, scalar or packed SIMD;
* ``CAST`` -- single-cycle conversions on the FPU conversion slices;
* ``BRANCH`` -- compare-and-branch; taken branches pay a pipeline bubble;
* ``LOOP_SETUP`` -- RI5CY hardware-loop initialisation (two single-cycle
  instructions per loop nest, zero per-iteration overhead).
"""

from __future__ import annotations

from enum import IntEnum

from repro.core import FPFormat

__all__ = ["Kind", "Instr", "BRANCH_TAKEN_PENALTY", "LOAD_USE_LATENCY"]

#: Extra bubble cycles after a taken branch (RI5CY prefetch flush).
BRANCH_TAKEN_PENALTY = 1

#: Cycles until a loaded value is usable (1 = next-cycle, i.e. one
#: potential stall for an immediately-dependent consumer).
LOAD_USE_LATENCY = 2


class Kind(IntEnum):
    """Instruction class."""

    ALU = 0
    LI = 1
    LOAD = 2
    STORE = 3
    FP = 4
    CAST = 5
    BRANCH = 6
    LOOP_SETUP = 7
    NOP = 8


class Instr:
    """One dynamic instruction.

    Attributes
    ----------
    kind:
        Instruction class (:class:`Kind`).
    dst:
        Destination virtual register id, or None.
    srcs:
        Source virtual register ids.
    op:
        Sub-operation: ``add``/``sub``/``mul``/``div``/``sqrt``/``cmp``
        for FP, ``cvt_ff``/``cvt_fi``/``cvt_if`` for CAST.
    fmt:
        FP format of an FP op, or the *destination* format of a cast.
    src_fmt:
        Source format of a cast (None for int sources).
    lanes:
        SIMD lanes (1 = scalar; 2 = 2x16-bit; 4 = 4x8-bit).
    width:
        Bytes moved by a memory access (total across lanes).
    taken:
        Branch outcome (branches only).
    """

    __slots__ = (
        "kind",
        "dst",
        "srcs",
        "op",
        "fmt",
        "src_fmt",
        "lanes",
        "width",
        "taken",
    )

    def __init__(
        self,
        kind: Kind,
        dst: int | None = None,
        srcs: tuple[int, ...] = (),
        op: str | None = None,
        fmt: FPFormat | None = None,
        src_fmt: FPFormat | None = None,
        lanes: int = 1,
        width: int = 0,
        taken: bool = False,
    ) -> None:
        self.kind = kind
        self.dst = dst
        self.srcs = srcs
        self.op = op
        self.fmt = fmt
        self.src_fmt = src_fmt
        self.lanes = lanes
        self.width = width
        self.taken = taken

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [self.kind.name.lower()]
        if self.op:
            parts.append(self.op)
        if self.fmt is not None:
            parts.append(str(self.fmt))
        if self.lanes > 1:
            parts.append(f"x{self.lanes}")
        if self.dst is not None:
            parts.append(f"r{self.dst}<-")
        parts.extend(f"r{s}" for s in self.srcs)
        return f"<{' '.join(parts)}>"
