"""Program trace inspection: disassembly and instruction-mix summaries.

Debugging aid for kernel authors: render a built program's dynamic
instruction stream as readable assembly-like text, and summarize its
instruction mix (the quantities the platform's cycle and energy models
consume).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from .isa import Instr, Kind
from .program import Program

__all__ = [
    "disassemble",
    "InstructionMix",
    "instruction_mix",
    "instruction_mix_legacy",
]

_MEM_MNEMONICS = {Kind.LOAD: "lw", Kind.STORE: "sw"}


def _mnemonic(instr: Instr) -> str:
    kind = instr.kind
    if kind == Kind.ALU:
        return "alu"
    if kind == Kind.LI:
        if instr.fmt is not None:
            return f"fli.{_suffix(instr)}"
        return "li"
    if kind in _MEM_MNEMONICS:
        base = _MEM_MNEMONICS[kind]
        if instr.fmt is None:
            return base
        width = {1: "b", 2: "h", 4: "w"}[instr.fmt.storage_bytes]
        if instr.lanes > 1:
            return f"v{base[0]}l{width}" if kind == Kind.LOAD else f"vs{width}"
        return f"f{base[0]}{base[1]}{width}"
    if kind == Kind.FP:
        prefix = "vf" if instr.lanes > 1 else "f"
        return f"{prefix}{instr.op}.{_suffix(instr)}"
    if kind == Kind.CAST:
        prefix = "vf" if instr.lanes > 1 else "f"
        return f"{prefix}cvt"
    if kind == Kind.BRANCH:
        return "bne" if instr.taken else "bne(nt)"
    if kind == Kind.LOOP_SETUP:
        return "lp.setup"
    return "nop"


def _suffix(instr: Instr) -> str:
    names = {
        "binary8": "b", "binary16": "h", "binary16alt": "ah",
        "binary32": "s", "binary64": "d",
    }
    return names.get(instr.fmt.name if instr.fmt else "", "?")


def disassemble(program: Program, limit: int | None = None) -> str:
    """Render the dynamic instruction stream as assembly-like text."""
    lines = []
    instrs = program.instrs[:limit] if limit else program.instrs
    for pc, instr in enumerate(instrs):
        operands = []
        if instr.dst is not None:
            operands.append(f"r{instr.dst}")
        operands.extend(f"r{s}" for s in instr.srcs)
        mnemonic = _mnemonic(instr)
        lanes = f" x{instr.lanes}" if instr.lanes > 1 else ""
        lines.append(
            f"{pc:6d}: {mnemonic:12s} {', '.join(operands)}{lanes}"
        )
    if limit and len(program.instrs) > limit:
        lines.append(f"  ... {len(program.instrs) - limit} more")
    return "\n".join(lines)


@dataclass
class InstructionMix:
    """Counts per instruction class, plus FP/cast/memory detail."""

    total: int = 0
    by_kind: Counter = field(default_factory=Counter)
    fp_by_format: Counter = field(default_factory=Counter)
    vector_instrs: int = 0
    cast_instrs: int = 0
    taken_branches: int = 0

    def fraction(self, kind: Kind) -> float:
        if self.total == 0:
            return 0.0
        return self.by_kind[kind.name] / self.total


def instruction_mix(program: Program) -> InstructionMix:
    """Tally the instruction mix of a built program.

    Dispatches on the active replay engine: the columnar bincount
    kernel by default (the mix feeds the Fig. 6 driver's per-class
    attribution, so it sits on the replay hot path), the per-``Instr``
    loop under ``REPRO_ENGINE=legacy`` -- equal Counters either way.
    """
    from .columnar import instruction_mix_columns
    from .engine import active_engine

    if active_engine() == "columnar":
        return instruction_mix_columns(program.columns())
    return instruction_mix_legacy(program)


def instruction_mix_legacy(program: Program) -> InstructionMix:
    """The per-``Instr`` tally, kept as the parity oracle."""
    mix = InstructionMix(total=len(program.instrs))
    for instr in program.instrs:
        mix.by_kind[instr.kind.name] += 1
        if instr.lanes > 1:
            mix.vector_instrs += 1
        if instr.kind == Kind.FP:
            mix.fp_by_format[instr.fmt.name] += 1
        elif instr.kind == Kind.CAST:
            mix.cast_instrs += 1
        elif instr.kind == Kind.BRANCH and instr.taken:
            mix.taken_branches += 1
    return mix
