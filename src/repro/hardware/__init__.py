"""Hardware models: transprecision FPU and PULPino-like virtual platform."""

from . import fpu
from .cpu import Timing, classify, result_latency, simulate_timing
from .energy import DEFAULT_ENERGY_MODEL, EnergyBreakdown, EnergyModel
from .isa import BRANCH_TAKEN_PENALTY, LOAD_USE_LATENCY, Instr, Kind
from .memory import MemoryStats, count_memory
from .platform import RunReport, VirtualPlatform, assemble_report
from .program import ArrayRef, KernelBuilder, Program, Reg
from .trace import InstructionMix, disassemble, instruction_mix

__all__ = [
    "fpu",
    "Instr",
    "Kind",
    "BRANCH_TAKEN_PENALTY",
    "LOAD_USE_LATENCY",
    "Timing",
    "simulate_timing",
    "result_latency",
    "classify",
    "assemble_report",
    "EnergyModel",
    "EnergyBreakdown",
    "DEFAULT_ENERGY_MODEL",
    "MemoryStats",
    "count_memory",
    "RunReport",
    "VirtualPlatform",
    "KernelBuilder",
    "Program",
    "ArrayRef",
    "Reg",
    "disassemble",
    "instruction_mix",
    "InstructionMix",
]
