"""Hardware models: transprecision FPU and PULPino-like virtual platform."""

from . import fpu
from .columnar import (
    ProgramColumns,
    count_memory_columns,
    energy_split_columns,
    instruction_mix_columns,
    lower_instrs,
    simulate_program_timing,
    simulate_timing_columns,
)
from .cpu import Timing, classify, result_latency, simulate_timing
from .energy import DEFAULT_ENERGY_MODEL, EnergyBreakdown, EnergyModel
from .engine import active_engine, set_engine
from .engine import engine as engine_scope
from .isa import BRANCH_TAKEN_PENALTY, LOAD_USE_LATENCY, Instr, Kind
from .memory import MemoryStats, count_memory
from .platform import (
    RunReport,
    VirtualPlatform,
    assemble_report,
    assemble_report_legacy,
)
from .program import ArrayRef, KernelBuilder, Program, Reg
from .trace import (
    InstructionMix,
    disassemble,
    instruction_mix,
    instruction_mix_legacy,
)

__all__ = [
    "fpu",
    "Instr",
    "Kind",
    "BRANCH_TAKEN_PENALTY",
    "LOAD_USE_LATENCY",
    "Timing",
    "simulate_timing",
    "simulate_timing_columns",
    "simulate_program_timing",
    "result_latency",
    "classify",
    "assemble_report",
    "assemble_report_legacy",
    "ProgramColumns",
    "lower_instrs",
    "count_memory_columns",
    "energy_split_columns",
    "instruction_mix_columns",
    "instruction_mix_legacy",
    "active_engine",
    "set_engine",
    "engine_scope",
    "EnergyModel",
    "EnergyBreakdown",
    "DEFAULT_ENERGY_MODEL",
    "MemoryStats",
    "count_memory",
    "RunReport",
    "VirtualPlatform",
    "KernelBuilder",
    "Program",
    "ArrayRef",
    "Reg",
    "disassemble",
    "instruction_mix",
    "InstructionMix",
]
