"""In-order pipeline timing model (the PULPino virtual platform's core).

Replays a dynamic instruction stream through a single-issue in-order
pipeline with register scoreboarding:

* one instruction issues per cycle, when its sources are ready;
* ALU results forward (no stall between dependent ALU instructions);
* loads have one cycle of load-use latency;
* FP arithmetic latency comes from the transprecision FPU model
  (2 cycles for 32/16-bit formats, 1 cycle for binary8 and casts);
* sequential div/sqrt block the FPU until completion (not pipelined);
* taken branches pay a pipeline bubble.

The model reports total cycles, stall cycles, and a cycle attribution by
class (vector FP, cast, memory, other) used by the Fig. 6 driver.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .fpu.occupancy import FpuOccupancy
from .fpu.ops import arithmetic_latency, cast_latency, sequential_latency
from .isa import BRANCH_TAKEN_PENALTY, LOAD_USE_LATENCY, Instr, Kind

__all__ = ["Timing", "simulate_timing", "result_latency", "classify"]


@dataclass
class Timing:
    """Cycle-level outcome of a program replay."""

    cycles: int = 0
    instructions: int = 0
    stall_cycles: int = 0
    #: Issue+stall cycles attributed per class: "fp_scalar", "fp_vector",
    #: "cast", "mem", "branch", "other".
    cycles_by_class: dict[str, int] = field(default_factory=dict)

    def add_class_cycles(self, cls: str, n: int) -> None:
        self.cycles_by_class[cls] = self.cycles_by_class.get(cls, 0) + n

    # ------------------------------------------------------------------
    # Serialization (result store / experiment runner)
    # ------------------------------------------------------------------
    def to_payload(self) -> dict:
        """JSON-able dict; :meth:`from_payload` restores an equal object."""
        return {
            "cycles": self.cycles,
            "instructions": self.instructions,
            "stall_cycles": self.stall_cycles,
            "cycles_by_class": dict(self.cycles_by_class),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "Timing":
        return cls(
            cycles=int(payload["cycles"]),
            instructions=int(payload["instructions"]),
            stall_cycles=int(payload["stall_cycles"]),
            cycles_by_class={
                str(k): int(v)
                for k, v in payload["cycles_by_class"].items()
            },
        )


#: Latency by kind for everything but FP, precomputed once: ALU/LI and
#: the control kinds resolve in one cycle, loads carry the load-use
#: latency, casts the conversion-slice latency.
_KIND_LATENCY = tuple(
    LOAD_USE_LATENCY
    if kind == Kind.LOAD
    else (cast_latency() if kind == Kind.CAST else 1)
    for kind in Kind
)

#: FP ops whose latency ignores the format: sequential div/sqrt and the
#: single-cycle comparators.
_FP_OP_LATENCY = {
    "div": sequential_latency("div"),
    "sqrt": sequential_latency("sqrt"),
    "cmp": 1,
}

#: Arithmetic latency per format, filled on first sight.  FPFormat
#: hashes by value (the name is compare=False), so two equal formats
#: share an entry -- exactly the formats ``arithmetic_latency`` treats
#: alike.  Bounded by the number of distinct formats a process touches.
_ARITH_LATENCY_CACHE: dict = {}


def result_latency(
    instr: Instr, fp_latency_override: dict[str, int] | None = None
) -> int:
    """Cycles from issue until the destination register is forwardable.

    ``fp_latency_override`` maps format names to arithmetic latencies
    (used by the latency-sensitivity ablation).  Table-driven: the
    per-kind and per-op branches are precomputed at import, so the
    legacy/oracle replay path no longer re-branches (and re-runs the
    format-support scan) on every instruction.
    """
    if instr.kind != Kind.FP:
        return _KIND_LATENCY[instr.kind]
    latency = _FP_OP_LATENCY.get(instr.op)
    if latency is not None:
        return latency
    if fp_latency_override and instr.fmt.name in fp_latency_override:
        return fp_latency_override[instr.fmt.name]
    fmt = instr.fmt
    latency = _ARITH_LATENCY_CACHE.get(fmt)
    if latency is None:
        latency = arithmetic_latency(fmt)
        _ARITH_LATENCY_CACHE[fmt] = latency
    return latency


def classify(instr: Instr) -> str:
    kind = instr.kind
    if kind == Kind.FP:
        return "fp_vector" if instr.lanes > 1 else "fp_scalar"
    if kind == Kind.CAST:
        return "cast"
    if kind in (Kind.LOAD, Kind.STORE):
        return "mem"
    if kind == Kind.BRANCH:
        return "branch"
    return "other"


def simulate_timing(
    instrs: list[Instr],
    fp_latency_override: dict[str, int] | None = None,
) -> Timing:
    """Replay the stream and account cycles.

    Returns a :class:`Timing`; ``cycles`` covers issue of the first
    instruction through completion of the last write-back.
    """
    timing = Timing(instructions=len(instrs))
    ready: dict[int, int] = {}
    cycle = 0  # next free issue slot
    fpu = FpuOccupancy()  # this core's private FPU instance
    last_writeback = 0

    for instr in instrs:
        earliest = cycle
        for src in instr.srcs:
            when = ready.get(src, 0)
            if when > earliest:
                earliest = when
        if instr.kind == Kind.FP:
            earliest = fpu.earliest_issue(earliest)

        stall = earliest - cycle
        issue = earliest
        consumed = 1  # the issue slot itself
        if instr.kind == Kind.BRANCH and instr.taken:
            consumed += BRANCH_TAKEN_PENALTY

        latency = result_latency(instr, fp_latency_override)
        if instr.dst is not None:
            done = issue + latency
            ready[instr.dst] = done
            if done > last_writeback:
                last_writeback = done
        if instr.kind == Kind.FP:
            fpu.note_issue(instr.op, issue, latency)

        cycle = issue + consumed
        timing.stall_cycles += stall
        timing.add_class_cycles(classify(instr), stall + consumed)

    timing.cycles = max(cycle, last_writeback)
    return timing
