"""Columnar trace engine: vectorized replay of dynamic streams.

The legacy engine walks a ``list[Instr]`` one Python object at a time --
and every analytic (timing, energy, memory, instruction mix, report
counters) re-loops the same stream.  This module lowers a built program
**once** into numpy column arrays (the bitslice idea of Xu & Gregg's
vector types, applied to the simulator itself) and reimplements the
analytics as array kernels:

* instruction mix, memory accounting and the per-class cycle split are
  ``np.bincount``/``np.unique`` reductions;
* result latencies come from a precomputed per-(kind, op, fmt) table
  gathered in one shot;
* the energy model is a pure gather-and-sum -- with the stream-order
  left-fold float accumulation of the legacy loop reproduced exactly by
  ``np.cumsum`` (sequential by construction), so the floats match bit
  for bit;
* the scoreboard/FPU-occupancy recurrence of ``simulate_timing`` -- the
  only true sequential dependence -- stays one fused pass, but over
  primitive ints pre-gathered from the columns instead of per-``Instr``
  attribute walks and function calls.

Bit-identity against the legacy loops is a hard gate
(``tests/hardware/test_columnar*.py``): every :class:`Timing`,
:class:`EnergyBreakdown`, :class:`MemoryStats` and
:class:`InstructionMix` these kernels produce equals the legacy
engine's, on the full app grid and on seeded randomized streams.

Lowered columns are cached on the :class:`~repro.hardware.Program`
(:meth:`~repro.hardware.Program.columns`), so a program replayed many
times -- the latency ablation, the cluster topology sweep -- pays the
lowering once.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from .cpu import Timing, simulate_timing
from .energy import EnergyBreakdown, EnergyModel
from .engine import active_engine
from .fpu.energy import cast_energy_pj, op_energy_pj
from .fpu.ops import (
    SEQUENTIAL_OPS,
    arithmetic_latency,
    cast_latency,
    sequential_latency,
)
from .isa import BRANCH_TAKEN_PENALTY, LOAD_USE_LATENCY, Instr, Kind
from .memory import MemoryStats
from .trace import InstructionMix

__all__ = [
    "CLASS_NAMES",
    "ProgramColumns",
    "lower_instrs",
    "simulate_timing_columns",
    "simulate_program_timing",
    "count_memory_columns",
    "energy_split_columns",
    "instruction_mix_columns",
    "fp_cast_counters_columns",
    "uses_default_energy_rules",
]

#: Cycle-attribution classes, indexed by the ``cls_id`` column.  The
#: names and membership mirror :func:`repro.hardware.cpu.classify`.
CLASS_NAMES = ("fp_scalar", "fp_vector", "cast", "mem", "branch", "other")

_K_LOAD = int(Kind.LOAD)
_K_STORE = int(Kind.STORE)
_K_FP = int(Kind.FP)
_K_CAST = int(Kind.CAST)
_K_BRANCH = int(Kind.BRANCH)


class ProgramColumns:
    """One dynamic stream lowered to structure-of-arrays form.

    The per-instruction fields of :class:`~repro.hardware.isa.Instr`
    become parallel numpy arrays; ``op`` and ``fmt`` objects are
    interned into small per-stream tables (``ops`` / ``formats``) and
    referenced by id, with id 0 reserved for ``None`` in both.  Two
    plain-Python views (``dst_list`` / ``srcs_list``) feed the fused
    timing pass, which needs per-element access anyway and is faster on
    lists of ints than on numpy scalars.

    Instances are immutable once built and safe to share: the derived
    tables (latencies per override, energy gathers) are memoized here,
    which is what makes replay-heavy sweeps cheap.
    """

    __slots__ = (
        "n",
        "kind",
        "op_id",
        "fmt_id",
        "src_fmt_id",
        "lanes",
        "dst",
        "taken",
        "width",
        "ops",
        "formats",
        "dst_list",
        "srcs_list",
        "n_regs",
        "consumed",
        "cls_id",
        "fp_flag",
        "bits_by_fmt",
        "_lat_cache",
        "_fp_energy",
        "_cast_energy",
    )

    def __init__(self) -> None:  # populated by lower_instrs
        self._lat_cache: dict = {}
        self._fp_energy = None
        self._cast_energy = None

    # ------------------------------------------------------------------
    # Latency table (per fp_latency_override, memoized)
    # ------------------------------------------------------------------
    def latencies(self, fp_latency_override: dict[str, int] | None = None):
        """Per-instruction result latency, mirroring ``result_latency``."""
        return self.prepared(fp_latency_override)[0]

    def prepared(self, fp_latency_override: dict[str, int] | None = None):
        """Replay-ready views for one latency configuration, memoized.

        Returns ``(lat, lat_list, srcs_eff, flag_eff)``:

        * ``lat`` / ``lat_list`` -- per-instruction result latency as a
          numpy array and a plain-int list;
        * ``srcs_eff`` -- per-instruction source tuples with the
          provably non-stalling sources removed;
        * ``flag_eff`` -- the FP hazard flag with the div/sqrt busy
          check dropped where no preceding sequential op can still be
          in flight.

        Both prunings are *static lower-bound* arguments, exact for any
        stream: let ``base[i]`` be instruction *i*'s issue cycle in a
        stall-free replay (the exclusive prefix sum of consumed issue
        slots) and ``delay[i]`` its accumulated slip in the real replay
        (data/structural stalls on a single core, plus arbitration
        losses on a cluster core).  ``delay`` is nondecreasing in *i*
        -- every instruction advances the issue cursor by at least its
        consumed slots -- so for a producer *j* of consumer *i*::

            ready[j] = base[j] + delay[j] + lat[j]
                     <= base[i] + delay[i]          when base[j] + lat[j] <= base[i]

        i.e. the dependence can never bind and the scoreboard check is
        dead code for that edge.  The same bound applied to the most
        recent div/sqrt decides whether an FP instruction can ever see
        the unit busy.  Neither pruning changes any issue cycle; it
        only removes comparisons that provably never fire (gated by the
        bit-identity suite like everything else here).
        """
        key = (
            None
            if not fp_latency_override
            else tuple(sorted(fp_latency_override.items()))
        )
        entry = self._lat_cache.get(key)
        if entry is None:
            lat = self._compute_latencies(fp_latency_override)
            entry = (lat, *self._prune_hazards(lat))
            self._lat_cache[key] = entry
        return entry

    def _prune_hazards(self, lat):
        empty: tuple[int, ...] = ()
        lat_l = lat.tolist()
        base_l = (np.cumsum(self.consumed) - self.consumed).tolist()
        flags = self.fp_flag.tolist()
        writer = [-1] * max(self.n_regs, 1)
        srcs_eff: list[tuple[int, ...]] = []
        flag_eff: list[int] = []
        last_seq = -1
        for i, (srcs, dst, flag) in enumerate(
            zip(self.srcs_list, self.dst_list, flags)
        ):
            issue_floor = base_l[i]
            if srcs:
                kept = tuple(
                    src
                    for src in srcs
                    if writer[src] >= 0
                    and base_l[writer[src]] + lat_l[writer[src]] > issue_floor
                )
                srcs_eff.append(kept if kept else empty)
            else:
                srcs_eff.append(empty)
            if flag == 2:
                flag_eff.append(2)
                last_seq = i
            elif flag == 1:
                flag_eff.append(
                    1
                    if last_seq >= 0
                    and base_l[last_seq] + lat_l[last_seq] > issue_floor
                    else 0
                )
            else:
                flag_eff.append(0)
            if dst >= 0:
                writer[dst] = i
        return lat_l, srcs_eff, flag_eff

    def _compute_latencies(self, override: dict[str, int] | None):
        lat = np.ones(self.n, dtype=np.int64)
        lat[self.kind == _K_LOAD] = LOAD_USE_LATENCY
        lat[self.kind == _K_CAST] = cast_latency()
        fp_mask = self.kind == _K_FP
        if fp_mask.any():
            n_ops = len(self.ops)
            pair = (
                self.fmt_id[fp_mask].astype(np.int64) * n_ops
                + self.op_id[fp_mask]
            )
            table = np.ones(len(self.formats) * n_ops, dtype=np.int64)
            for p in np.unique(pair).tolist():
                fmt = self.formats[p // n_ops]
                op = self.ops[p % n_ops]
                table[p] = _fp_result_latency(op, fmt, override)
            lat[fp_mask] = table[pair]
        lat.setflags(write=False)
        return lat

    # ------------------------------------------------------------------
    # Energy gather tables (module constants only, memoized)
    # ------------------------------------------------------------------
    def fp_energy_table(self):
        """Per-(fmt_id, op_id) single-lane FP energy, flat-indexed."""
        if self._fp_energy is None:
            n_ops = len(self.ops)
            table = np.zeros(len(self.formats) * n_ops)
            fp_mask = self.kind == _K_FP
            if fp_mask.any():
                pair = (
                    self.fmt_id[fp_mask].astype(np.int64) * n_ops
                    + self.op_id[fp_mask]
                )
                for p in np.unique(pair).tolist():
                    table[p] = op_energy_pj(
                        self.formats[p // n_ops], self.ops[p % n_ops], 1
                    )
            table.setflags(write=False)
            self._fp_energy = table
        return self._fp_energy

    def cast_energy_table(self):
        """Per-(src_fmt_id, fmt_id) single-lane cast energy."""
        if self._cast_energy is None:
            n_fmts = len(self.formats)
            table = np.zeros(n_fmts * n_fmts)
            cast_mask = self.kind == _K_CAST
            if cast_mask.any():
                pair = (
                    self.src_fmt_id[cast_mask].astype(np.int64) * n_fmts
                    + self.fmt_id[cast_mask]
                )
                for p in np.unique(pair).tolist():
                    table[p] = cast_energy_pj(
                        self.formats[p // n_fmts], self.formats[p % n_fmts]
                    )
            table.setflags(write=False)
            self._cast_energy = table
        return self._cast_energy


def _fp_result_latency(
    op: str | None, fmt, override: dict[str, int] | None
) -> int:
    """FP result latency by the exact ``result_latency`` rules."""
    if op in SEQUENTIAL_OPS:
        return sequential_latency(op)
    if op == "cmp":
        return 1
    if override and fmt is not None and fmt.name in override:
        return override[fmt.name]
    return arithmetic_latency(fmt)


def lower_instrs(instrs: list[Instr]) -> ProgramColumns:
    """Lower a dynamic stream into columns (one pass, done once)."""
    cols = ProgramColumns()
    n = len(instrs)
    kind_l: list[int] = []
    op_l: list[int] = []
    fmt_l: list[int] = []
    sfmt_l: list[int] = []
    lanes_l: list[int] = []
    dst_l: list[int] = []
    srcs_l: list[tuple[int, ...]] = []
    taken_l: list[bool] = []
    width_l: list[int] = []
    op_ids: dict = {None: 0}
    ops: list = [None]
    fmt_ids: dict = {None: 0}
    formats: list = [None]
    max_reg = -1

    for ins in instrs:
        kind_l.append(int(ins.kind))
        op = ins.op
        oid = op_ids.get(op)
        if oid is None:
            oid = op_ids[op] = len(ops)
            ops.append(op)
        op_l.append(oid)
        fmt_l.append(_intern_fmt(ins.fmt, fmt_ids, formats))
        sfmt_l.append(_intern_fmt(ins.src_fmt, fmt_ids, formats))
        lanes_l.append(ins.lanes)
        dst = ins.dst
        dst_l.append(-1 if dst is None else dst)
        if dst is not None and dst > max_reg:
            max_reg = dst
        srcs = tuple(ins.srcs)
        srcs_l.append(srcs)
        for src in srcs:
            if src > max_reg:
                max_reg = src
        taken_l.append(ins.taken)
        width_l.append(ins.width)

    cols.n = n
    cols.kind = np.asarray(kind_l, dtype=np.int16)
    cols.op_id = np.asarray(op_l, dtype=np.int32)
    cols.fmt_id = np.asarray(fmt_l, dtype=np.int32)
    cols.src_fmt_id = np.asarray(sfmt_l, dtype=np.int32)
    cols.lanes = np.asarray(lanes_l, dtype=np.int64)
    cols.dst = np.asarray(dst_l, dtype=np.int64)
    cols.taken = np.asarray(taken_l, dtype=bool)
    cols.width = np.asarray(width_l, dtype=np.int64)
    cols.ops = tuple(ops)
    cols.formats = tuple(formats)
    cols.dst_list = dst_l
    cols.srcs_list = srcs_l
    cols.n_regs = max_reg + 1

    # Derived columns the kernels gather from.
    cols.consumed = np.where(
        (cols.kind == _K_BRANCH) & cols.taken, 1 + BRANCH_TAKEN_PENALTY, 1
    ).astype(np.int64)
    is_fp = cols.kind == _K_FP
    cls = np.full(n, CLASS_NAMES.index("other"), dtype=np.int64)
    cls[is_fp & (cols.lanes > 1)] = CLASS_NAMES.index("fp_vector")
    cls[is_fp & (cols.lanes <= 1)] = CLASS_NAMES.index("fp_scalar")
    cls[cols.kind == _K_CAST] = CLASS_NAMES.index("cast")
    cls[(cols.kind == _K_LOAD) | (cols.kind == _K_STORE)] = (
        CLASS_NAMES.index("mem")
    )
    cls[cols.kind == _K_BRANCH] = CLASS_NAMES.index("branch")
    cols.cls_id = cls
    seq_ids = [i for i, op in enumerate(ops) if op in SEQUENTIAL_OPS]
    fp_flag = is_fp.astype(np.int64)
    if seq_ids:
        fp_flag[is_fp & np.isin(cols.op_id, seq_ids)] = 2
    cols.fp_flag = fp_flag
    cols.bits_by_fmt = np.asarray(
        [32 if fmt is None else fmt.bits for fmt in formats], dtype=np.int64
    )
    for arr in (
        cols.kind, cols.op_id, cols.fmt_id, cols.src_fmt_id, cols.lanes,
        cols.dst, cols.taken, cols.width, cols.consumed, cols.cls_id,
        cols.fp_flag, cols.bits_by_fmt,
    ):
        arr.setflags(write=False)
    return cols


def _intern_fmt(fmt, fmt_ids: dict, formats: list) -> int:
    if fmt is None:
        return 0
    # Two formats that compare equal may still carry different names
    # (FPFormat.name is compare=False), and the analytics key on the
    # name -- intern by full identity, not by equality.
    key = (fmt.exp_bits, fmt.man_bits, fmt.name)
    fid = fmt_ids.get(key)
    if fid is None:
        fid = fmt_ids[key] = len(formats)
        formats.append(fmt)
    return fid


# ----------------------------------------------------------------------
# Timing: the one true sequential dependence, as a single fused pass
# ----------------------------------------------------------------------
def simulate_timing_columns(
    columns: ProgramColumns,
    fp_latency_override: dict[str, int] | None = None,
) -> Timing:
    """Replay lowered columns; bit-identical to ``simulate_timing``.

    The scoreboard recurrence (issue cycle of instruction *i* depends on
    the issue cycles of its producers and on the FPU occupancy left by
    earlier instructions) cannot be expressed as a fixed number of array
    ops, so it stays a loop -- but one that only touches pre-gathered
    primitive ints: no ``Instr`` attribute walks, no per-instruction
    latency/classify calls, no dict scoreboard.  Everything the loop
    does not need on its sequential path (per-class issue cycles) is
    reduced vectorially afterwards.

    Two exact prunings (see :meth:`ProgramColumns.prepared`) slim the
    loop body further: sources and div/sqrt busy checks that provably
    never stall are dropped up front.  The FPU issue port is not
    tracked at all on a single core: the port frees after one cycle
    (``port_busy_until = issue + 1``) while the issue cursor advances
    by at least one consumed slot past the same issue, so the port
    constraint can never bind for any stream -- only the shared FPUs of
    the cluster engine contend for ports.
    """
    timing = Timing(instructions=columns.n)
    if columns.n == 0:
        return timing

    _, lat_l, srcs_eff, flag_l = columns.prepared(fp_latency_override)
    cons_l = columns.consumed.tolist()
    cls_l = columns.cls_id.tolist()

    ready = [0] * columns.n_regs
    cls_stall = [0, 0, 0, 0, 0, 0]
    cycle = 0
    busy = 0  # FpuOccupancy.busy_until (div/sqrt sequential block)
    last_wb = 0
    stalls = 0

    for srcs, dst, latv, flag, consv, clsv in zip(
        srcs_eff, columns.dst_list, lat_l, flag_l, cons_l, cls_l
    ):
        earliest = cycle
        for src in srcs:
            when = ready[src]
            if when > earliest:
                earliest = when
        if flag:
            if busy > earliest:
                earliest = busy
            if flag == 2:
                busy = earliest + latv
        if dst >= 0:
            done = earliest + latv
            ready[dst] = done
            if done > last_wb:
                last_wb = done
        if earliest > cycle:
            stall = earliest - cycle
            stalls += stall
            cls_stall[clsv] += stall
        cycle = earliest + consv

    timing.stall_cycles = stalls
    timing.cycles = max(cycle, last_wb)
    timing.cycles_by_class = finalize_class_cycles(columns, cls_stall)
    return timing


def finalize_class_cycles(
    columns: ProgramColumns, cls_stall: list[int]
) -> dict[str, int]:
    """Issue+stall cycles per class, keyed in first-occurrence order.

    The legacy loop inserts each class key the first time an instruction
    of that class issues; reproducing the insertion order keeps even the
    JSON rendering of a :class:`Timing` byte-identical.
    """
    consumed_by_class = np.bincount(
        columns.cls_id, weights=columns.consumed, minlength=len(CLASS_NAMES)
    )
    present, first = np.unique(columns.cls_id, return_index=True)
    out: dict[str, int] = {}
    for idx in np.argsort(first):
        cid = int(present[idx])
        out[CLASS_NAMES[cid]] = int(consumed_by_class[cid]) + cls_stall[cid]
    return out


def simulate_program_timing(
    program, fp_latency_override: dict[str, int] | None = None
) -> Timing:
    """Replay a built program on the active engine."""
    if active_engine() == "columnar":
        return simulate_timing_columns(program.columns(), fp_latency_override)
    return simulate_timing(program.instrs, fp_latency_override)


# ----------------------------------------------------------------------
# Memory accounting
# ----------------------------------------------------------------------
def count_memory_columns(columns: ProgramColumns) -> MemoryStats:
    """Vectorized ``count_memory``; bit-identical counters."""
    stats = MemoryStats()
    is_load = columns.kind == _K_LOAD
    is_store = columns.kind == _K_STORE
    mem = is_load | is_store
    stats.loads = int(np.count_nonzero(is_load))
    stats.stores = int(np.count_nonzero(is_store))
    if stats.loads + stats.stores == 0:
        return stats
    stats.vector_accesses = int(np.count_nonzero(columns.lanes[mem] > 1))
    stats.bytes_moved = int(columns.width[mem].sum())
    bits = columns.bits_by_fmt[columns.fmt_id[mem]]
    values, first, counts = np.unique(
        bits, return_index=True, return_counts=True
    )
    for idx in np.argsort(first):
        stats.by_element_bits[int(values[idx])] = int(counts[idx])
    return stats


# ----------------------------------------------------------------------
# Energy split
# ----------------------------------------------------------------------
def uses_default_energy_rules(model: EnergyModel) -> bool:
    """True when the columnar gather may stand in for ``model.split``.

    A behavioural :class:`EnergyModel` subclass that overrides the
    per-instruction rules must keep running its own Python methods --
    only the constants of the default rules are baked into the gather
    tables.
    """
    cls = type(model)
    return (
        cls.split is EnergyModel.split
        and cls.datapath_energy_pj is EnergyModel.datapath_energy_pj
        and cls.category is EnergyModel.category
    )


def energy_split_columns(
    model: EnergyModel, columns: ProgramColumns, stall_cycles: int
) -> EnergyBreakdown:
    """Vectorized ``EnergyModel.split``; floats match bit for bit.

    The legacy loop left-folds ``+=`` per category in stream order;
    float addition is order-sensitive, so each category is reduced with
    ``np.cumsum`` (a strictly sequential running sum) over exactly the
    values the loop would have added, in exactly that order.
    """
    breakdown = EnergyBreakdown()
    n = columns.n
    is_fp = columns.kind == _K_FP
    is_cast = columns.kind == _K_CAST
    fp_cat = is_fp | is_cast
    if fp_cat.any():
        datapath = np.zeros(n)
        if is_fp.any():
            n_ops = len(columns.ops)
            pair = (
                columns.fmt_id[is_fp].astype(np.int64) * n_ops
                + columns.op_id[is_fp]
            )
            datapath[is_fp] = (
                columns.fp_energy_table()[pair] * columns.lanes[is_fp]
            )
        if is_cast.any():
            n_fmts = len(columns.formats)
            pair = (
                columns.src_fmt_id[is_cast].astype(np.int64) * n_fmts
                + columns.fmt_id[is_cast]
            )
            datapath[is_cast] = (
                columns.cast_energy_table()[pair] * columns.lanes[is_cast]
            )
        breakdown.fp_pj = float(np.cumsum(datapath[fp_cat])[-1])
    n_mem = int(
        np.count_nonzero(
            (columns.kind == _K_LOAD) | (columns.kind == _K_STORE)
        )
    )
    if n_mem:
        breakdown.mem_pj = float(
            np.cumsum(np.full(n_mem, model.dmem_access_pj))[-1]
        )
    if n:
        breakdown.other_pj = float(np.cumsum(np.full(n, model.issue_pj))[-1])
    breakdown.other_pj += stall_cycles * model.stall_pj
    return breakdown


# ----------------------------------------------------------------------
# Instruction mix and report counters
# ----------------------------------------------------------------------
def instruction_mix_columns(columns: ProgramColumns) -> InstructionMix:
    """Vectorized ``instruction_mix``; equal Counters."""
    mix = InstructionMix(total=columns.n)
    if columns.n == 0:
        return mix
    kind_counts = np.bincount(columns.kind, minlength=len(Kind))
    present, first = np.unique(columns.kind, return_index=True)
    for idx in np.argsort(first):
        k = int(present[idx])
        mix.by_kind[Kind(k).name] = int(kind_counts[k])
    mix.vector_instrs = int(np.count_nonzero(columns.lanes > 1))
    fp_mask = columns.kind == _K_FP
    if fp_mask.any():
        fids = columns.fmt_id[fp_mask]
        values, first, counts = np.unique(
            fids, return_index=True, return_counts=True
        )
        for idx in np.argsort(first):
            name = columns.formats[int(values[idx])].name
            mix.fp_by_format[name] += int(counts[idx])
    mix.cast_instrs = int(kind_counts[_K_CAST])
    mix.taken_branches = int(
        np.count_nonzero((columns.kind == _K_BRANCH) & columns.taken)
    )
    return mix


def fp_cast_counters_columns(
    columns: ProgramColumns,
) -> tuple[Counter, Counter]:
    """The report counters: FP ops by (fmt, op, lanes), casts likewise."""
    fp: Counter = Counter()
    casts: Counter = Counter()
    radix = int(columns.lanes.max()) + 1 if columns.n else 1
    fp_mask = columns.kind == _K_FP
    if fp_mask.any():
        n_ops = len(columns.ops)
        code = (
            columns.fmt_id[fp_mask].astype(np.int64) * n_ops
            + columns.op_id[fp_mask]
        ) * radix + columns.lanes[fp_mask]
        values, counts = np.unique(code, return_counts=True)
        for value, count in zip(values.tolist(), counts.tolist()):
            pair, lanes = divmod(value, radix)
            fmt_id, op_id = divmod(pair, n_ops)
            key = (columns.formats[fmt_id].name, columns.ops[op_id], lanes)
            fp[key] += count
    cast_mask = columns.kind == _K_CAST
    if cast_mask.any():
        n_fmts = len(columns.formats)
        code = (
            columns.src_fmt_id[cast_mask].astype(np.int64) * n_fmts
            + columns.fmt_id[cast_mask]
        ) * radix + columns.lanes[cast_mask]
        values, counts = np.unique(code, return_counts=True)
        for value, count in zip(values.tolist(), counts.tolist()):
            pair, lanes = divmod(value, radix)
            src_id, dst_id = divmod(pair, n_fmts)
            src = columns.formats[src_id]
            dst = columns.formats[dst_id]
            key = (
                src.name if src is not None else "int32",
                dst.name if dst is not None else "int32",
                lanes,
            )
            casts[key] += count
    return fp, casts
