"""The virtual platform: timing + memory + energy for one program run.

Equivalent of the paper's PULPino virtual platform runs (§V-A): executes
a built kernel, then reports cycles, memory accesses, FP operation
counts and the Fig. 7 energy split in one :class:`RunReport`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from .cpu import Timing, simulate_timing
from .energy import DEFAULT_ENERGY_MODEL, EnergyBreakdown, EnergyModel
from .isa import Instr, Kind
from .memory import MemoryStats, count_memory
from .program import Program

__all__ = ["RunReport", "VirtualPlatform"]


@dataclass
class RunReport:
    """Everything the experiment drivers need from one program run."""

    program: str
    timing: Timing
    memory: MemoryStats
    energy: EnergyBreakdown
    #: FP arithmetic instruction counts keyed by (format name, op, lanes).
    fp_instrs: Counter
    #: Cast instruction counts keyed by (src name, dst name, lanes).
    cast_instrs: Counter

    # ------------------------------------------------------------------
    @property
    def cycles(self) -> int:
        return self.timing.cycles

    @property
    def instructions(self) -> int:
        return self.timing.instructions

    @property
    def memory_accesses(self) -> int:
        return self.memory.total

    @property
    def energy_pj(self) -> float:
        return self.energy.total_pj

    def fp_operations(self) -> dict[tuple[str, str, bool], int]:
        """Elementwise FP operation counts (lanes expanded), keyed by
        (format, op, vector) -- the quantity plotted in Fig. 5."""
        out: Counter = Counter()
        for (fmt, op, lanes), n in self.fp_instrs.items():
            out[(fmt, op, lanes > 1)] += n * lanes
        return dict(out)

    def total_fp_operations(self) -> int:
        return sum(
            n * lanes for (_, _, lanes), n in self.fp_instrs.items()
        )

    def total_casts(self) -> int:
        return sum(
            n * lanes for (_, _, lanes), n in self.cast_instrs.items()
        )

    def cast_cycles(self) -> int:
        return self.timing.cycles_by_class.get("cast", 0)

    def vector_cycles(self) -> int:
        return self.timing.cycles_by_class.get("fp_vector", 0)


class VirtualPlatform:
    """Run programs and collect reports.

    Parameters
    ----------
    energy_model:
        Override the calibrated default (used by the ablation drivers).
    """

    def __init__(
        self,
        energy_model: EnergyModel | None = None,
        fp_latency_override: dict[str, int] | None = None,
    ) -> None:
        self._energy = energy_model or DEFAULT_ENERGY_MODEL
        self._fp_latency_override = fp_latency_override

    @property
    def energy_model(self) -> EnergyModel:
        return self._energy

    def run(self, program: Program) -> RunReport:
        """Replay a built kernel through timing, memory and energy."""
        timing = simulate_timing(program.instrs, self._fp_latency_override)
        memory = count_memory(program.instrs)
        energy = self._energy.split(program.instrs, timing.stall_cycles)

        fp: Counter = Counter()
        casts: Counter = Counter()
        for instr in program.instrs:
            if instr.kind == Kind.FP:
                fp[(instr.fmt.name, instr.op, instr.lanes)] += 1
            elif instr.kind == Kind.CAST:
                src = instr.src_fmt.name if instr.src_fmt else "int32"
                dst = instr.fmt.name if instr.fmt else "int32"
                casts[(src, dst, instr.lanes)] += 1

        return RunReport(
            program=program.name,
            timing=timing,
            memory=memory,
            energy=energy,
            fp_instrs=fp,
            cast_instrs=casts,
        )
