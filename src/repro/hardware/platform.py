"""The virtual platform: timing + memory + energy for one program run.

Equivalent of the paper's PULPino virtual platform runs (§V-A): executes
a built kernel, then reports cycles, memory accesses, FP operation
counts and the Fig. 7 energy split in one :class:`RunReport`.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass

from .columnar import (
    count_memory_columns,
    energy_split_columns,
    fp_cast_counters_columns,
    simulate_program_timing,
    uses_default_energy_rules,
)
from repro.telemetry import span as _span

from .cpu import Timing
from .energy import DEFAULT_ENERGY_MODEL, EnergyBreakdown, EnergyModel
from .engine import active_engine
from .isa import Instr, Kind
from .memory import MemoryStats, count_memory
from .program import Program

__all__ = [
    "RunReport",
    "VirtualPlatform",
    "assemble_report",
    "assemble_report_legacy",
]


@dataclass
class RunReport:
    """Everything the experiment drivers need from one program run."""

    program: str
    timing: Timing
    memory: MemoryStats
    energy: EnergyBreakdown
    #: FP arithmetic instruction counts keyed by (format name, op, lanes).
    fp_instrs: Counter
    #: Cast instruction counts keyed by (src name, dst name, lanes).
    cast_instrs: Counter

    # ------------------------------------------------------------------
    @property
    def cycles(self) -> int:
        return self.timing.cycles

    @property
    def instructions(self) -> int:
        return self.timing.instructions

    @property
    def memory_accesses(self) -> int:
        return self.memory.total

    @property
    def energy_pj(self) -> float:
        return self.energy.total_pj

    def fp_operations(self) -> dict[tuple[str, str, bool], int]:
        """Elementwise FP operation counts (lanes expanded), keyed by
        (format, op, vector) -- the quantity plotted in Fig. 5."""
        out: Counter = Counter()
        for (fmt, op, lanes), n in self.fp_instrs.items():
            out[(fmt, op, lanes > 1)] += n * lanes
        return dict(out)

    def total_fp_operations(self) -> int:
        return sum(
            n * lanes for (_, _, lanes), n in self.fp_instrs.items()
        )

    def total_casts(self) -> int:
        return sum(
            n * lanes for (_, _, lanes), n in self.cast_instrs.items()
        )

    def cast_cycles(self) -> int:
        return self.timing.cycles_by_class.get("cast", 0)

    def vector_cycles(self) -> int:
        return self.timing.cycles_by_class.get("fp_vector", 0)

    # ------------------------------------------------------------------
    # Serialization (result store / experiment runner)
    # ------------------------------------------------------------------
    def to_payload(self) -> dict:
        """JSON-able dict; :meth:`from_payload` restores an equal report.

        Counter keys are tuples, which JSON cannot express: they are
        flattened to ``[field..., count]`` rows.
        """
        return {
            "program": self.program,
            "timing": self.timing.to_payload(),
            "memory": self.memory.to_payload(),
            "energy": self.energy.to_payload(),
            "fp_instrs": [
                [fmt, op, lanes, n]
                for (fmt, op, lanes), n in sorted(self.fp_instrs.items())
            ],
            "cast_instrs": [
                [src, dst, lanes, n]
                for (src, dst, lanes), n in sorted(self.cast_instrs.items())
            ],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "RunReport":
        return cls(
            program=payload["program"],
            timing=Timing.from_payload(payload["timing"]),
            memory=MemoryStats.from_payload(payload["memory"]),
            energy=EnergyBreakdown.from_payload(payload["energy"]),
            fp_instrs=Counter(
                {
                    (fmt, op, int(lanes)): int(n)
                    for fmt, op, lanes, n in payload["fp_instrs"]
                }
            ),
            cast_instrs=Counter(
                {
                    (src, dst, int(lanes)): int(n)
                    for src, dst, lanes, n in payload["cast_instrs"]
                }
            ),
        )


def assemble_report(
    program: Program, timing: Timing, energy_model: EnergyModel
) -> RunReport:
    """Build the full report for one replayed program.

    Shared by :class:`VirtualPlatform` and the multi-core
    :class:`repro.cluster.ClusterPlatform` (which times the streams
    itself, contention included, but accounts memory, energy and
    operation counts by exactly the same rules).  Dispatches on the
    active replay engine: the columnar kernels by default, the legacy
    per-instruction loops under ``REPRO_ENGINE=legacy`` -- the reports
    are bit-identical either way.
    """
    if active_engine() == "columnar":
        columns = program.columns()
        if uses_default_energy_rules(energy_model):
            energy = energy_split_columns(
                energy_model, columns, timing.stall_cycles
            )
        else:
            # Behavioural energy-model subclasses keep their own rules.
            energy = energy_model.split(program.instrs, timing.stall_cycles)
        fp, casts = fp_cast_counters_columns(columns)
        return RunReport(
            program=program.name,
            timing=timing,
            memory=count_memory_columns(columns),
            energy=energy,
            fp_instrs=fp,
            cast_instrs=casts,
        )
    return assemble_report_legacy(program, timing, energy_model)


def assemble_report_legacy(
    program: Program, timing: Timing, energy_model: EnergyModel
) -> RunReport:
    """The per-``Instr`` report assembly, kept as the parity oracle."""
    memory = count_memory(program.instrs)
    energy = energy_model.split(program.instrs, timing.stall_cycles)

    fp: Counter = Counter()
    casts: Counter = Counter()
    for instr in program.instrs:
        if instr.kind == Kind.FP:
            fp[(instr.fmt.name, instr.op, instr.lanes)] += 1
        elif instr.kind == Kind.CAST:
            src = instr.src_fmt.name if instr.src_fmt else "int32"
            dst = instr.fmt.name if instr.fmt else "int32"
            casts[(src, dst, instr.lanes)] += 1

    return RunReport(
        program=program.name,
        timing=timing,
        memory=memory,
        energy=energy,
        fp_instrs=fp,
        cast_instrs=casts,
    )


class VirtualPlatform:
    """Run programs and collect reports.

    Parameters
    ----------
    energy_model:
        Override the calibrated default (used by the ablation drivers).
    """

    def __init__(
        self,
        energy_model: EnergyModel | None = None,
        fp_latency_override: dict[str, int] | None = None,
    ) -> None:
        self._energy = energy_model or DEFAULT_ENERGY_MODEL
        self._fp_latency_override = fp_latency_override

    @property
    def energy_model(self) -> EnergyModel:
        return self._energy

    @property
    def fp_latency_override(self) -> dict[str, int] | None:
        return self._fp_latency_override

    # ------------------------------------------------------------------
    # Serialization (worker-session bootstrap)
    # ------------------------------------------------------------------
    def to_payload(self) -> dict:
        """JSON-able configuration; :meth:`from_payload` rebuilds a
        platform producing identical reports."""
        return {
            "energy_model": self._energy.to_payload(),
            "fp_latency_override": (
                dict(self._fp_latency_override)
                if self._fp_latency_override is not None
                else None
            ),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "VirtualPlatform":
        override = payload["fp_latency_override"]
        return cls(
            energy_model=EnergyModel.from_payload(payload["energy_model"]),
            fp_latency_override=(
                {str(k): int(v) for k, v in override.items()}
                if override is not None
                else None
            ),
        )

    def fingerprint(self) -> str:
        """Stable configuration description for result keying.

        Unlike :meth:`to_payload` this never raises: an energy-model
        subclass that cannot cross a process boundary can still be
        *distinguished* (by its dataclass repr) so its results never
        alias the default platform's in a result store.
        """
        try:
            return json.dumps(self.to_payload(), sort_keys=True)
        except TypeError:
            return repr((self._energy, self._fp_latency_override))

    def run(self, program: Program) -> RunReport:
        """Replay a built kernel through timing, memory and energy.

        Uses the active replay engine (columnar by default, legacy
        under ``REPRO_ENGINE=legacy``); results are bit-identical.
        """
        with _span("platform.run") as sp:
            timing = simulate_program_timing(
                program, self._fp_latency_override
            )
            report = assemble_report(program, timing, self._energy)
            if sp is not None:
                sp.attrs["program"] = program.name
                sp.attrs["instructions"] = len(program.instrs)
                sp.attrs["engine"] = active_engine()
        return report
