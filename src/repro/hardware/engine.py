"""Replay-engine selection: columnar (default) vs legacy.

Two engines replay dynamic instruction streams:

* ``columnar`` -- the vectorized engine in
  :mod:`repro.hardware.columnar`: the stream is lowered once into numpy
  column arrays (cached on the :class:`~repro.hardware.Program`) and the
  per-instruction analytics run as array kernels, with one fused
  primitive-int pass for the scoreboard/FPU recurrence;
* ``legacy`` -- the original per-``Instr`` Python loops
  (:func:`repro.hardware.cpu.simulate_timing` and friends), kept as the
  bit-identity oracle.

Both produce bit-identical :class:`Timing` / :class:`EnergyBreakdown` /
:class:`MemoryStats` / :class:`InstructionMix` objects (gated in
``tests/hardware/test_columnar*.py``), so the choice never changes any
result -- only wall time.  The escape hatch exists for debugging and for
the parity gates themselves:

* environment: ``REPRO_ENGINE=legacy``
* CLI: ``repro ... --engine legacy``
"""

from __future__ import annotations

import os
from contextlib import contextmanager

__all__ = ["ENV_VAR", "ENGINES", "active_engine", "set_engine", "engine"]

ENV_VAR = "REPRO_ENGINE"

#: Recognised engine names.
ENGINES = ("columnar", "legacy")

#: Process-wide override (set by the CLI / tests); None defers to the
#: environment.  Results are engine-independent by construction, so the
#: override deliberately does not travel in worker ``SessionSpec``s: a
#: worker replaying on the default engine produces byte-identical store
#: payloads.
_override: str | None = None


def _validate(name: str) -> str:
    name = name.strip().lower()
    if name not in ENGINES:
        raise ValueError(
            f"unknown replay engine {name!r}; expected one of {ENGINES}"
        )
    return name


def active_engine() -> str:
    """The engine replays should use right now."""
    if _override is not None:
        return _override
    raw = os.environ.get(ENV_VAR, "")
    if raw.strip():
        return _validate(raw)
    return "columnar"


def set_engine(name: str | None) -> None:
    """Set (or with None, clear) the process-wide engine override."""
    global _override
    _override = None if name is None else _validate(name)


@contextmanager
def engine(name: str):
    """Temporarily force an engine (parity tests and benchmarks)."""
    global _override
    previous = _override
    _override = _validate(name)
    try:
        yield
    finally:
        _override = previous
