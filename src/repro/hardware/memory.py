"""Data-memory access accounting (Fig. 6's left-hand bars).

The paper reports *memory accesses* normalized to the binary32 baseline,
highlighting vectorial accesses: a packed load of two binary16 (or four
binary8) operands is a single 32-bit TCDM access, which is where the
memory-side savings of the narrow formats come from.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .isa import Instr, Kind

__all__ = ["MemoryStats", "count_memory"]


@dataclass
class MemoryStats:
    """Access counters for one program replay."""

    loads: int = 0
    stores: int = 0
    vector_accesses: int = 0
    bytes_moved: int = 0
    #: Accesses by the element width in bits (vector accesses count once
    #: under their element width).
    by_element_bits: dict[int, int] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return self.loads + self.stores

    @property
    def scalar_accesses(self) -> int:
        return self.total - self.vector_accesses

    def add(self, instr: Instr) -> None:
        if instr.kind == Kind.LOAD:
            self.loads += 1
        elif instr.kind == Kind.STORE:
            self.stores += 1
        else:
            return
        if instr.lanes > 1:
            self.vector_accesses += 1
        self.bytes_moved += instr.width
        bits = 32 if instr.fmt is None else instr.fmt.bits
        self.by_element_bits[bits] = self.by_element_bits.get(bits, 0) + 1

    # ------------------------------------------------------------------
    # Serialization (result store / experiment runner)
    # ------------------------------------------------------------------
    def to_payload(self) -> dict:
        """JSON-able dict; :meth:`from_payload` restores an equal object."""
        return {
            "loads": self.loads,
            "stores": self.stores,
            "vector_accesses": self.vector_accesses,
            "bytes_moved": self.bytes_moved,
            # JSON keys are strings; decode turns them back into ints.
            "by_element_bits": {
                str(k): v for k, v in self.by_element_bits.items()
            },
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "MemoryStats":
        return cls(
            loads=int(payload["loads"]),
            stores=int(payload["stores"]),
            vector_accesses=int(payload["vector_accesses"]),
            bytes_moved=int(payload["bytes_moved"]),
            by_element_bits={
                int(k): int(v)
                for k, v in payload["by_element_bits"].items()
            },
        )


def count_memory(instrs: list[Instr]) -> MemoryStats:
    """Tally all memory accesses in a replayed stream."""
    stats = MemoryStats()
    for instr in instrs:
        stats.add(instr)
    return stats
