"""Platform energy model (core + memories + FPU).

**Substitution note (see DESIGN.md):** the paper measures energy on a
post-layout UMC 65nm design; this model replaces those measurements with
per-event constants chosen so that

* the binary32 baseline reproduces the paper's motivation numbers
  (intro: ~30% of core+memory energy in FP operations and ~20% in moving
  FP operands between data memory and registers, fleet average), and
* the FPU per-op ratios follow :mod:`repro.hardware.fpu.energy`.

Every instruction pays an issue cost (core logic + instruction memory);
loads/stores additionally pay a data-memory port access; FP and cast
instructions additionally pay the FPU slice energy; stall cycles pay an
idle cost.

Attribution (the split used by the motivation experiment and Fig. 7)
is by *datapath*: the **FP ops** category holds the FPU slice/conversion
energy, **Memory ops** holds the data-memory port energy, and
**Other ops** holds everything the core itself burns -- fetch, decode,
issue of every instruction (FP ones included), integer work and stall
cycles.  This matches the paper's framing, where FP computation is 30%
and FP operand movement 20% of the core + data-memory energy, with the
remaining half in the core's general activity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .fpu.energy import cast_energy_pj, op_energy_pj
from .isa import Instr, Kind

__all__ = ["EnergyBreakdown", "EnergyModel", "DEFAULT_ENERGY_MODEL"]


@dataclass
class EnergyBreakdown:
    """Energy per Fig. 7 category, in pJ."""

    fp_pj: float = 0.0
    mem_pj: float = 0.0
    other_pj: float = 0.0

    @property
    def total_pj(self) -> float:
        return self.fp_pj + self.mem_pj + self.other_pj

    def fractions(self) -> dict[str, float]:
        total = self.total_pj
        if total == 0.0:
            return {"fp": 0.0, "mem": 0.0, "other": 0.0}
        return {
            "fp": self.fp_pj / total,
            "mem": self.mem_pj / total,
            "other": self.other_pj / total,
        }

    # ------------------------------------------------------------------
    # Serialization (result store / experiment runner)
    # ------------------------------------------------------------------
    def to_payload(self) -> dict:
        """JSON-able dict; floats round-trip bit-exactly through json."""
        return {
            "fp_pj": self.fp_pj,
            "mem_pj": self.mem_pj,
            "other_pj": self.other_pj,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "EnergyBreakdown":
        return cls(
            fp_pj=float(payload["fp_pj"]),
            mem_pj=float(payload["mem_pj"]),
            other_pj=float(payload["other_pj"]),
        )


@dataclass(frozen=True)
class EnergyModel:
    """Per-event energy constants, picojoules.

    Attributes
    ----------
    issue_pj:
        Core logic plus instruction-memory fetch per issued instruction.
    stall_pj:
        Idle pipeline cycle (clock tree and leakage of the stalled core).
    dmem_access_pj:
        One data-memory (TCDM) port access; the port is 32 bits wide, so
        the cost is per access, not per byte -- which is exactly why
        packing two 16-bit or four 8-bit operands into one access saves
        energy (paper §IV).
    """

    issue_pj: float = 10.0
    stall_pj: float = 3.0
    dmem_access_pj: float = 12.5

    # ------------------------------------------------------------------
    # Serialization (worker-session bootstrap)
    # ------------------------------------------------------------------
    def to_payload(self) -> dict:
        """JSON-able constants, rebuildable with :meth:`from_payload`.

        Only plain :class:`EnergyModel` instances can cross a process
        boundary: a behavioural subclass cannot be reconstructed from
        its constants alone, so it is refused rather than silently
        flattened.
        """
        if type(self) is not EnergyModel:
            raise TypeError(
                f"{type(self).__name__} cannot be serialized; only "
                "plain EnergyModel instances cross process boundaries"
            )
        return {
            "issue_pj": self.issue_pj,
            "stall_pj": self.stall_pj,
            "dmem_access_pj": self.dmem_access_pj,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "EnergyModel":
        return cls(
            issue_pj=float(payload["issue_pj"]),
            stall_pj=float(payload["stall_pj"]),
            dmem_access_pj=float(payload["dmem_access_pj"]),
        )

    # ------------------------------------------------------------------
    def datapath_energy_pj(self, instr: Instr) -> float:
        """The FPU or memory-port energy of one instruction (0 for ALU)."""
        kind = instr.kind
        if kind in (Kind.LOAD, Kind.STORE):
            return self.dmem_access_pj
        if kind == Kind.FP:
            return op_energy_pj(instr.fmt, instr.op, instr.lanes)
        if kind == Kind.CAST:
            return cast_energy_pj(instr.src_fmt, instr.fmt) * instr.lanes
        return 0.0

    def instruction_energy_pj(self, instr: Instr) -> float:
        """Energy of one instruction, excluding stall cycles."""
        return self.issue_pj + self.datapath_energy_pj(instr)

    @staticmethod
    def category(instr: Instr) -> str:
        """Datapath category of an instruction: fp, mem or other."""
        if instr.kind in (Kind.FP, Kind.CAST):
            return "fp"
        if instr.kind in (Kind.LOAD, Kind.STORE):
            return "mem"
        return "other"

    def split(
        self, instrs: list[Instr], stall_cycles: int
    ) -> EnergyBreakdown:
        """Total energy of a replayed stream, split by datapath.

        FPU slice/conversion energy lands in ``fp``, data-memory port
        energy in ``mem``; issue costs of *every* instruction plus stall
        cycles land in ``other`` (the core's own activity).
        """
        breakdown = EnergyBreakdown()
        for instr in instrs:
            cat = self.category(instr)
            if cat == "fp":
                breakdown.fp_pj += self.datapath_energy_pj(instr)
            elif cat == "mem":
                breakdown.mem_pj += self.datapath_energy_pj(instr)
            breakdown.other_pj += self.issue_pj
        breakdown.other_pj += stall_cycles * self.stall_pj
        return breakdown


#: The calibrated default model used by all experiment drivers.
DEFAULT_ENERGY_MODEL = EnergyModel()
