"""Kernel builder: writes mini-ISA programs while computing them.

The builder plays the role of the compiler in the paper's methodology
(§V-A: GCC with a RISC-V backend, plus manual accounting for the formats
GCC cannot emit).  Application kernels are written against this API; the
builder simultaneously

* **computes** every value bit-exactly (through the FlexFloat
  quantizer), so a kernel's numerical output equals the emulation
  library's, and
* **emits** the dynamic instruction stream the PULPino-like core would
  execute, which the pipeline model then times.

Register values live next to register ids in :class:`Reg`; arrays are
allocated as :class:`ArrayRef` whose payloads stay sanitized to their
format.  Loops use RI5CY hardware loops when the nest depth allows (two
levels), else a software compare-and-branch per iteration.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.core import FPFormat, quantize, quantize_array

from .isa import Instr, Kind

__all__ = ["Reg", "ArrayRef", "KernelBuilder", "Program"]

#: Maximum hardware-loop nesting depth (RI5CY has two lp register sets).
HW_LOOP_LEVELS = 2


class Reg:
    """A virtual register carrying its current value.

    ``value`` is a float for scalar FP/int registers, or a tuple of
    floats for packed-SIMD registers.
    """

    __slots__ = ("rid", "value")

    def __init__(self, rid: int, value) -> None:
        self.rid = rid
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Reg(r{self.rid}={self.value!r})"


class ArrayRef:
    """A data-memory array bound to one storage format.

    ``fmt is None`` denotes an int32 array (labels, indices).  FP arrays
    keep their payload sanitized to ``fmt`` at all times.
    """

    __slots__ = ("name", "fmt", "data")

    def __init__(self, name: str, fmt: FPFormat | None, data: list) -> None:
        self.name = name
        self.fmt = fmt
        self.data = data

    def __len__(self) -> int:
        return len(self.data)

    @property
    def element_bytes(self) -> int:
        return 4 if self.fmt is None else self.fmt.storage_bytes

    def to_numpy(self) -> np.ndarray:
        return np.asarray(self.data, dtype=np.float64)


class Program:
    """An emitted instruction stream plus its data arrays."""

    def __init__(
        self, name: str, instrs: list[Instr], arrays: dict[str, ArrayRef]
    ) -> None:
        self.name = name
        self.instrs = instrs
        self.arrays = arrays
        self._columns = None

    def __len__(self) -> int:
        return len(self.instrs)

    def columns(self):
        """The stream lowered to columnar form, cached on first use.

        A built program's stream never changes, so the lowering runs at
        most once; every columnar analytic (timing, energy, memory,
        mix, report counters) and every re-replay of the same program
        (latency ablations, cluster topology sweeps) shares it.
        """
        if self._columns is None:
            from .columnar import lower_instrs

            self._columns = lower_instrs(self.instrs)
        return self._columns

    def output(self, name: str) -> np.ndarray:
        """The final contents of an array (the program's result)."""
        return self.arrays[name].to_numpy()


class KernelBuilder:
    """Emit-and-execute builder for mini-ISA kernels."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._instrs: list[Instr] = []
        self._arrays: dict[str, ArrayRef] = {}
        self._next_reg = 0
        self._loop_depth = 0

    # ------------------------------------------------------------------
    # Data allocation (no instructions emitted: static data layout)
    # ------------------------------------------------------------------
    def alloc(
        self, name: str, values: Sequence[float] | np.ndarray,
        fmt: FPFormat | None,
    ) -> ArrayRef:
        """Allocate and initialise an array; FP payloads are sanitized."""
        if name in self._arrays:
            raise ValueError(f"array {name!r} already allocated")
        flat = np.asarray(values, dtype=np.float64).reshape(-1)
        if fmt is not None:
            flat = quantize_array(flat, fmt)
        ref = ArrayRef(name, fmt, [float(v) for v in flat])
        self._arrays[name] = ref
        return ref

    def zeros(self, name: str, n: int, fmt: FPFormat | None) -> ArrayRef:
        """Allocate an output array of ``n`` zero elements."""
        return self.alloc(name, np.zeros(n), fmt)

    # ------------------------------------------------------------------
    # Register helpers
    # ------------------------------------------------------------------
    def _reg(self, value) -> Reg:
        reg = Reg(self._next_reg, value)
        self._next_reg += 1
        return reg

    def _emit(self, instr: Instr) -> None:
        self._instrs.append(instr)

    # ------------------------------------------------------------------
    # Integer / control instructions
    # ------------------------------------------------------------------
    def li(self, value: float | int) -> Reg:
        """Load an immediate into a fresh register (1 instruction)."""
        reg = self._reg(value)
        self._emit(Instr(Kind.LI, dst=reg.rid))
        return reg

    def alu(self, value, *srcs: Reg) -> Reg:
        """One integer ALU instruction producing ``value``."""
        reg = self._reg(value)
        self._emit(
            Instr(Kind.ALU, dst=reg.rid, srcs=tuple(s.rid for s in srcs))
        )
        return reg

    def branch(self, taken: bool, *srcs: Reg) -> None:
        """A conditional branch with a known outcome."""
        self._emit(
            Instr(
                Kind.BRANCH,
                srcs=tuple(s.rid for s in srcs),
                taken=taken,
            )
        )

    def loop(self, n: int, soft: bool = False) -> Iterator[int]:
        """Iterate a counted loop, emitting the loop machinery.

        Uses a zero-overhead hardware loop when the nest depth allows and
        ``soft`` is False (two LOOP_SETUP instructions up front);
        otherwise emits an increment and a branch per iteration.
        """
        hw = not soft and self._loop_depth < HW_LOOP_LEVELS
        if n > 0 and hw:
            self._emit(Instr(Kind.LOOP_SETUP))
            self._emit(Instr(Kind.LOOP_SETUP))
        counter = self.li(0) if not hw and n > 0 else None
        self._loop_depth += 1
        try:
            for i in range(n):
                yield i
                if not hw:
                    counter = self.alu(i + 1, counter)
                    self.branch(i < n - 1, counter)
        finally:
            self._loop_depth -= 1

    # ------------------------------------------------------------------
    # Memory instructions
    # ------------------------------------------------------------------
    def load(self, arr: ArrayRef, index: int, lanes: int = 1) -> Reg:
        """Load ``lanes`` consecutive elements (1 memory access)."""
        self._check_lanes(arr.fmt, lanes)
        if index < 0 or index + lanes > len(arr.data):
            raise IndexError(
                f"{arr.name}[{index}:{index + lanes}] out of bounds "
                f"(len {len(arr.data)})"
            )
        if lanes == 1:
            value = arr.data[index]
        else:
            value = tuple(arr.data[index : index + lanes])
        reg = self._reg(value)
        self._emit(
            Instr(
                Kind.LOAD,
                dst=reg.rid,
                fmt=arr.fmt,
                lanes=lanes,
                width=arr.element_bytes * lanes,
            )
        )
        return reg

    def store(
        self, arr: ArrayRef, index: int, reg: Reg, lanes: int = 1
    ) -> None:
        """Store ``lanes`` consecutive elements (1 memory access)."""
        self._check_lanes(arr.fmt, lanes)
        if index < 0 or index + lanes > len(arr.data):
            raise IndexError(
                f"{arr.name}[{index}:{index + lanes}] out of bounds "
                f"(len {len(arr.data)})"
            )
        values = reg.value if lanes > 1 else (reg.value,)
        if len(values) != lanes:
            raise ValueError(
                f"register holds {len(values)} lanes, store wants {lanes}"
            )
        for offset, v in enumerate(values):
            if arr.fmt is not None:
                v = quantize(float(v), arr.fmt)
            arr.data[index + offset] = v
        self._emit(
            Instr(
                Kind.STORE,
                srcs=(reg.rid,),
                fmt=arr.fmt,
                lanes=lanes,
                width=arr.element_bytes * lanes,
            )
        )

    # ------------------------------------------------------------------
    # Floating-point instructions
    # ------------------------------------------------------------------
    def fconst(self, value: float, fmt: FPFormat) -> Reg:
        """Materialize an FP constant (1 instruction, no memory access)."""
        reg = self._reg(quantize(float(value), fmt))
        self._emit(Instr(Kind.LI, dst=reg.rid, fmt=fmt))
        return reg

    def vconst(self, values: Sequence[float], fmt: FPFormat) -> Reg:
        """Materialize a packed SIMD constant (replicated immediate)."""
        self._check_lanes(fmt, len(values))
        reg = self._reg(tuple(quantize(float(v), fmt) for v in values))
        self._emit(
            Instr(Kind.LI, dst=reg.rid, fmt=fmt, lanes=len(values))
        )
        return reg

    def fp(self, op: str, fmt: FPFormat, a: Reg, b: Reg, lanes: int = 1) -> Reg:
        """ADD/SUB/MUL/CMP (any format) or DIV/SQRT (binary32, scalar)."""
        self._check_lanes(fmt, lanes)
        va = _lanes_of(a.value, lanes)
        vb = _lanes_of(b.value, lanes)
        raw = [_fp_apply(op, x, y) for x, y in zip(va, vb)]
        out = tuple(quantize(v, fmt) for v in raw)
        reg = self._reg(out[0] if lanes == 1 else out)
        self._emit(
            Instr(
                Kind.FP,
                dst=reg.rid,
                srcs=(a.rid, b.rid),
                op=op,
                fmt=fmt,
                lanes=lanes,
            )
        )
        return reg

    def fma(
        self, fmt: FPFormat, a: Reg, b: Reg, c: Reg, lanes: int = 1
    ) -> Reg:
        """Fused multiply-add ``a*b + c`` (single rounding, extension op)."""
        self._check_lanes(fmt, lanes)
        va = _lanes_of(a.value, lanes)
        vb = _lanes_of(b.value, lanes)
        vc = _lanes_of(c.value, lanes)
        out = tuple(
            quantize(x * y + z, fmt) for x, y, z in zip(va, vb, vc)
        )
        reg = self._reg(out[0] if lanes == 1 else out)
        self._emit(
            Instr(
                Kind.FP,
                dst=reg.rid,
                srcs=(a.rid, b.rid, c.rid),
                op="fma",
                fmt=fmt,
                lanes=lanes,
            )
        )
        return reg

    def fsqrt(self, fmt: FPFormat, a: Reg) -> Reg:
        """Sequential square root (binary32 only on this platform)."""
        value = quantize(
            float(a.value) ** 0.5 if float(a.value) >= 0 else float("nan"),
            fmt,
        )
        reg = self._reg(value)
        self._emit(
            Instr(Kind.FP, dst=reg.rid, srcs=(a.rid,), op="sqrt", fmt=fmt)
        )
        return reg

    def fdiv(self, fmt: FPFormat, a: Reg, b: Reg) -> Reg:
        """Sequential division (binary32 only on this platform)."""
        return self.fp("div", fmt, a, b)

    def cast(
        self,
        reg: Reg,
        src_fmt: FPFormat | None,
        dst_fmt: FPFormat | None,
        lanes: int = 1,
    ) -> Reg:
        """FP<->FP or FP<->int conversion (1 cycle on the cast slices)."""
        if src_fmt is None and dst_fmt is None:
            raise ValueError("cast needs at least one FP side")
        values = _lanes_of(reg.value, lanes)
        if dst_fmt is None:
            out = tuple(float(int(round(v))) for v in values)
        else:
            out = tuple(quantize(float(v), dst_fmt) for v in values)
        op = "cvt_ff"
        if src_fmt is None:
            op = "cvt_if"
        elif dst_fmt is None:
            op = "cvt_fi"
        new = self._reg(out[0] if lanes == 1 else out)
        self._emit(
            Instr(
                Kind.CAST,
                dst=new.rid,
                srcs=(reg.rid,),
                op=op,
                fmt=dst_fmt,
                src_fmt=src_fmt,
                lanes=lanes,
            )
        )
        return new

    # ------------------------------------------------------------------
    def program(self) -> Program:
        """Finish building and hand the trace to the platform."""
        return Program(self.name, self._instrs, self._arrays)

    @property
    def instruction_count(self) -> int:
        return len(self._instrs)

    # ------------------------------------------------------------------
    @staticmethod
    def _check_lanes(fmt: FPFormat | None, lanes: int) -> None:
        if lanes == 1:
            return
        if fmt is None:
            raise ValueError("int arrays support scalar access only")
        if lanes * fmt.bits > 32:
            raise ValueError(
                f"{lanes} lanes of {fmt} exceed the 32-bit datapath"
            )
        if lanes not in (2, 4):
            raise ValueError(f"unsupported lane count {lanes}")


def _lanes_of(value, lanes: int) -> tuple[float, ...]:
    if lanes == 1:
        if isinstance(value, tuple):
            raise ValueError("scalar operation on a vector register")
        return (float(value),)
    if not isinstance(value, tuple):
        raise ValueError("vector operation on a scalar register")
    if len(value) != lanes:
        raise ValueError(f"register has {len(value)} lanes, need {lanes}")
    return value


def _fp_apply(op: str, x: float, y: float) -> float:
    if op == "add":
        return x + y
    if op == "sub":
        return x - y
    if op == "mul":
        return x * y
    if op == "cmp":
        return 1.0 if x < y else 0.0
    if op == "div":
        if y == 0.0:
            return float("nan") if x == 0.0 else float("inf") * (1 if x > 0 else -1)
        return x / y
    raise ValueError(f"unknown FP operation {op!r}")
