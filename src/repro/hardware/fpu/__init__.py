"""Transprecision FPU model: slices, latencies, energies, functional unit."""

from .energy import (
    ARITH_ENERGY_PJ,
    SEQUENTIAL_ENERGY_PJ,
    cast_energy_pj,
    op_energy_pj,
)
from .occupancy import FpuOccupancy
from .ops import (
    ARITH_OPS,
    CAST_OPS,
    COMPARE_OPS,
    SEQUENTIAL_LATENCY,
    SEQUENTIAL_OPS,
    arithmetic_latency,
    cast_latency,
    sequential_latency,
    simd_lanes,
    supports,
)
from .slices import SLICE8, SLICE16, SLICE32, SLICES, Slice, slice_for
from .unit import FPUResult, TransprecisionFPU

__all__ = [
    "ARITH_OPS",
    "CAST_OPS",
    "COMPARE_OPS",
    "SEQUENTIAL_OPS",
    "SEQUENTIAL_LATENCY",
    "arithmetic_latency",
    "cast_latency",
    "sequential_latency",
    "simd_lanes",
    "supports",
    "Slice",
    "SLICE32",
    "SLICE16",
    "SLICE8",
    "SLICES",
    "slice_for",
    "ARITH_ENERGY_PJ",
    "SEQUENTIAL_ENERGY_PJ",
    "cast_energy_pj",
    "op_energy_pj",
    "FPUResult",
    "TransprecisionFPU",
    "FpuOccupancy",
]
