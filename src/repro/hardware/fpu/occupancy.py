"""Occupancy state of one FPU instance (the structural-hazard model).

The single-core pipeline model and the multi-core cluster arbiter share
the same two structural facts about the transprecision FPU:

* **sequential block** -- div/sqrt iterate in the unit; nothing else can
  issue to it until they complete (the ``fpu_busy_until`` hazard the
  single-core model always had);
* **issue port** -- the unit accepts one new operation per cycle.  A
  single core can never violate this (it issues at most one instruction
  per cycle anyway), which is why the single-core model never had to
  track it; it becomes *the* contended resource once several cores share
  one FPU instance.

:class:`FpuOccupancy` holds both.  :func:`repro.hardware.cpu
.simulate_timing` drives one instance per core; the cluster arbiter
drives one instance per *shared* FPU and layers round-robin arbitration
on top.
"""

from __future__ import annotations

from .ops import SEQUENTIAL_OPS

__all__ = ["FpuOccupancy"]


class FpuOccupancy:
    """Busy state of one FPU instance.

    Attributes
    ----------
    busy_until:
        First cycle at which the unit is free of a sequential (div/sqrt)
        operation; pipelined arithmetic never sets it.
    port_busy_until:
        First cycle at which the issue port accepts a new operation
        (the cycle after the last accepted issue).
    """

    __slots__ = ("busy_until", "port_busy_until")

    def __init__(self) -> None:
        self.busy_until = 0
        self.port_busy_until = 0

    def earliest_issue(self, cycle: int) -> int:
        """Earliest cycle >= ``cycle`` at which an FP op can issue here."""
        earliest = cycle
        if self.busy_until > earliest:
            earliest = self.busy_until
        if self.port_busy_until > earliest:
            earliest = self.port_busy_until
        return earliest

    def note_issue(self, op: str | None, issue: int, latency: int) -> None:
        """Record an accepted FP issue at cycle ``issue``.

        Sequential operations block the whole unit for their latency;
        every operation occupies the issue port for its issue cycle.
        """
        self.note_issue_flagged(op in SEQUENTIAL_OPS, issue, latency)

    def note_issue_flagged(
        self, sequential: bool, issue: int, latency: int
    ) -> None:
        """`note_issue` with the div/sqrt test already decided.

        The columnar engine pre-classifies sequential operations during
        lowering, so its replay loops skip the per-issue tuple scan and
        record occupancy through this entry point instead -- same
        semantics, same state.
        """
        self.port_busy_until = issue + 1
        if sequential:
            self.busy_until = issue + latency

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FpuOccupancy(busy_until={self.busy_until}, "
            f"port_busy_until={self.port_busy_until})"
        )
