"""Slice structure of the transprecision FPU datapath (paper Fig. 3).

The unit is built from three slice types with fixed widths of 32, 16 and
8 bits.  Each slice hosts the arithmetic for the formats matching its
width plus the conversion operations involving them; narrower slices are
replicated (2x 16-bit, 4x 8-bit) so that a 32-bit operand register can
feed packed-SIMD operations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import BINARY8, BINARY16, BINARY16ALT, BINARY32, FPFormat

__all__ = ["Slice", "SLICE32", "SLICE16", "SLICE8", "SLICES", "slice_for"]


@dataclass(frozen=True)
class Slice:
    """One slice type of the datapath.

    Attributes
    ----------
    width:
        Datapath width in bits.
    replicas:
        How many copies exist (sub-word parallelism).
    formats:
        The FP formats whose arithmetic this slice hosts.
    """

    name: str
    width: int
    replicas: int
    formats: tuple[FPFormat, ...]

    def hosts(self, fmt: FPFormat) -> bool:
        return any(fmt == f for f in self.formats)

    @property
    def max_lanes(self) -> int:
        return self.replicas


SLICE32 = Slice("slice32", 32, 1, (BINARY32,))
SLICE16 = Slice("slice16", 16, 2, (BINARY16, BINARY16ALT))
SLICE8 = Slice("slice8", 8, 4, (BINARY8,))

#: All slices, widest first, as drawn in Fig. 3.
SLICES = (SLICE32, SLICE16, SLICE8)


def slice_for(fmt: FPFormat) -> Slice:
    """The slice hosting a format's arithmetic."""
    for candidate in SLICES:
        if candidate.hosts(fmt):
            return candidate
    raise ValueError(f"no slice hosts {fmt}")
