"""Functional + analytical model of the SmallFloatUnit (paper Fig. 3).

The unit executes scalar or packed-SIMD operations on the four supported
formats, returning bit-exact results (via the FlexFloat quantizer)
together with the latency and energy the hardware would spend.  It also
keeps running counters per slice, which the tests use to verify operand
isolation (an operation only ever activates the slices of its format).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.core import BINARY32, FPFormat, quantize

from .energy import cast_energy_pj, op_energy_pj
from .ops import (
    ARITH_OPS,
    SEQUENTIAL_OPS,
    arithmetic_latency,
    cast_latency,
    sequential_latency,
    simd_lanes,
    supports,
)
from .slices import slice_for

__all__ = ["FPUResult", "TransprecisionFPU"]


@dataclass(frozen=True)
class FPUResult:
    """Outcome of one unit operation."""

    values: tuple[float, ...]
    latency: int
    energy_pj: float

    @property
    def value(self) -> float:
        """Convenience accessor for scalar results."""
        if len(self.values) != 1:
            raise ValueError("vector result; use .values")
        return self.values[0]


@dataclass
class TransprecisionFPU:
    """The transprecision floating-point unit.

    Example
    -------
    >>> from repro.core import BINARY8
    >>> fpu = TransprecisionFPU()
    >>> fpu.arith("add", BINARY8, (1.0, 2.0, 3.0, 4.0),
    ...           (0.5, 0.5, 0.5, 0.5)).values
    (1.5, 2.5, 3.5, 4.5)
    """

    #: Operations executed per slice name (activity counters).
    slice_activity: Counter = field(default_factory=Counter)
    #: Total energy spent, pJ.
    energy_pj: float = 0.0

    # ------------------------------------------------------------------
    def arith(
        self,
        op: str,
        fmt: FPFormat,
        a: tuple[float, ...] | float,
        b: tuple[float, ...] | float,
    ) -> FPUResult:
        """Execute ADD/SUB/MUL (or CMP) on one or more lanes.

        Operands may be scalars (1 lane) or tuples of up to
        ``simd_lanes(fmt)`` lanes; both operands must have the same lane
        count.  Results are sanitized to ``fmt`` exactly like hardware.
        """
        lanes_a = _as_lanes(a)
        lanes_b = _as_lanes(b)
        if len(lanes_a) != len(lanes_b):
            raise ValueError(
                f"lane mismatch: {len(lanes_a)} vs {len(lanes_b)}"
            )
        lanes = len(lanes_a)
        if not supports(fmt):
            raise ValueError(f"{fmt} is not implemented by the FPU")
        if lanes > simd_lanes(fmt):
            raise ValueError(
                f"{fmt} supports at most {simd_lanes(fmt)} lanes, got {lanes}"
            )
        if op in ARITH_OPS or op == "cmp":
            latency = 1 if op == "cmp" else arithmetic_latency(fmt)
        elif op in SEQUENTIAL_OPS:
            if fmt != BINARY32:
                raise ValueError(f"{op} is only available in binary32")
            if lanes != 1:
                raise ValueError(f"{op} is scalar-only")
            latency = sequential_latency(op)
        else:
            raise ValueError(f"unknown FPU operation {op!r}")

        # Hardware operands arrive as format bit patterns: sanitize the
        # inputs to the operation format before computing, then round the
        # result back.  This keeps the unit bit-identical to FlexFloat.
        values = tuple(
            quantize(_apply(op, quantize(x, fmt), quantize(y, fmt)), fmt)
            for x, y in zip(lanes_a, lanes_b)
        )
        energy = op_energy_pj(fmt, op, lanes)
        self._account(fmt, lanes, energy)
        return FPUResult(values, latency, energy)

    def fma(
        self,
        fmt: FPFormat,
        a: tuple[float, ...] | float,
        b: tuple[float, ...] | float,
        c: tuple[float, ...] | float,
    ) -> FPUResult:
        """Fused multiply-add ``a*b + c`` with a single rounding.

        Extension beyond the paper's unit (its successors fuse); lanes
        and latency follow the arithmetic path of the format's slice.
        """
        lanes_a, lanes_b, lanes_c = _as_lanes(a), _as_lanes(b), _as_lanes(c)
        if not len(lanes_a) == len(lanes_b) == len(lanes_c):
            raise ValueError("lane mismatch among fma operands")
        if not supports(fmt):
            raise ValueError(f"{fmt} is not implemented by the FPU")
        if len(lanes_a) > simd_lanes(fmt):
            raise ValueError(
                f"{fmt} supports at most {simd_lanes(fmt)} lanes"
            )
        values = tuple(
            quantize(
                quantize(x, fmt) * quantize(y, fmt) + quantize(z, fmt), fmt
            )
            for x, y, z in zip(lanes_a, lanes_b, lanes_c)
        )
        energy = op_energy_pj(fmt, "fma", len(lanes_a))
        self._account(fmt, len(lanes_a), energy)
        return FPUResult(values, arithmetic_latency(fmt), energy)

    def convert(
        self,
        values: tuple[float, ...] | float,
        src: FPFormat | None,
        dst: FPFormat | None,
    ) -> FPUResult:
        """Execute a conversion (FP->FP, FP->int32 or int32->FP).

        ``src`` or ``dst`` may be None to denote the integer side.  All
        conversions are single-cycle.
        """
        lanes = _as_lanes(values)
        if src is None and dst is None:
            raise ValueError("cast needs at least one FP side")
        if src is not None:
            lanes = tuple(quantize(v, src) for v in lanes)
        if dst is None:  # FP -> int32: round to nearest, ties to even
            out = tuple(float(round(v)) for v in lanes)
        else:
            out = tuple(quantize(v, dst) for v in lanes)
        energy = cast_energy_pj(src, dst) * len(lanes)
        fmt_for_slice = dst if dst is not None else src
        self._account(fmt_for_slice, len(lanes), energy)
        return FPUResult(out, cast_latency(), energy)

    # ------------------------------------------------------------------
    def _account(self, fmt: FPFormat | None, lanes: int, energy: float) -> None:
        if fmt is not None and supports(fmt):
            self.slice_activity[slice_for(fmt).name] += lanes
        self.energy_pj += energy

    def reset(self) -> None:
        self.slice_activity.clear()
        self.energy_pj = 0.0


def _as_lanes(v) -> tuple[float, ...]:
    if isinstance(v, tuple):
        return v
    return (float(v),)


def _apply(op: str, x: float, y: float) -> float:
    if op == "add":
        return x + y
    if op == "sub":
        return x - y
    if op == "mul":
        return x * y
    if op == "cmp":
        return 1.0 if x < y else 0.0
    if op == "div":
        return x / y if y != 0.0 else float("inf") if x > 0 else float("-inf")
    if op == "sqrt":
        return x ** 0.5 if x >= 0.0 else float("nan")
    raise ValueError(f"unknown FPU operation {op!r}")
