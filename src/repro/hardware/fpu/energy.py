"""Per-operation energy of the transprecision FPU.

**Substitution note (see DESIGN.md):** the paper obtains these numbers
from post-place-&-route simulation of a UMC 65nm implementation built
from Synopsys DesignWare components; neither the technology libraries nor
the netlists are available, so this module provides an analytical pJ/op
table with the same *ratio structure*:

* energy grows superlinearly with slice width (multiplier area ~ m^2,
  adder ~ m), so binary8 ops are far cheaper than binary16, which is
  cheaper than binary32;
* binary16alt arithmetic is marginally cheaper than binary16 (8x8 vs
  11x11 significand multiplier, despite the wider exponent datapath);
* conversions are cheap single-cycle shifts/rounds, costed by the wider
  of the two formats involved;
* a full binary32 MUL+ADD pair lands near 19 pJ, the scale the paper
  quotes for comparable units (Kaul et al.: 19.4 pJ/FLOP);
* vector operations pay per active lane -- operand silencing forces the
  inputs of every unused slice to zero, which we model as zero dynamic
  energy in inactive slices.

All values are picojoules per (per-lane) operation, worst-case corner.
"""

from __future__ import annotations

from repro.core import FPFormat

from .ops import ARITH_OPS, COMPARE_OPS, SEQUENTIAL_OPS, supports

__all__ = [
    "ARITH_ENERGY_PJ",
    "SEQUENTIAL_ENERGY_PJ",
    "cast_energy_pj",
    "op_energy_pj",
]

#: Energy per scalar arithmetic operation, by (format name, op), in pJ.
ARITH_ENERGY_PJ: dict[tuple[str, str], float] = {
    ("binary32", "add"): 9.5,
    ("binary32", "sub"): 9.5,
    ("binary32", "mul"): 15.7,
    ("binary32", "cmp"): 3.0,
    ("binary16", "add"): 4.6,
    ("binary16", "sub"): 4.6,
    ("binary16", "mul"): 7.0,
    ("binary16", "cmp"): 1.5,
    ("binary16alt", "add"): 4.5,
    ("binary16alt", "sub"): 4.5,
    ("binary16alt", "mul"): 6.5,
    ("binary16alt", "cmp"): 1.5,
    ("binary8", "add"): 1.6,
    ("binary8", "sub"): 1.6,
    ("binary8", "mul"): 2.0,
    ("binary8", "cmp"): 0.8,
}

#: Fused multiply-add (extension op): one multiplier array plus the
#: wide-adder tail -- cheaper than a separate MUL followed by ADD.
FMA_ENERGY_PJ: dict[str, float] = {
    "binary32": 19.6,
    "binary16": 8.8,
    "binary16alt": 8.3,
    "binary8": 2.5,
}

#: Total energy of the sequential binary32 operations (div/sqrt iterate
#: for many cycles inside a compact non-pipelined datapath).
SEQUENTIAL_ENERGY_PJ: dict[str, float] = {"div": 32.0, "sqrt": 40.0}

#: Conversion energy by the wider bit-width involved in the cast.
_CAST_ENERGY_BY_WIDTH_PJ = {32: 1.9, 16: 1.2, 8: 0.8}


def cast_energy_pj(src: FPFormat | None, dst: FPFormat | None) -> float:
    """Energy of one conversion; either side may be None for int32."""
    width = 32  # integer side is a 32-bit datapath
    widths = [fmt.bits for fmt in (src, dst) if fmt is not None]
    if not widths:
        raise ValueError("cast needs at least one FP side")
    if src is not None and dst is not None:
        width = max(widths)
    return _CAST_ENERGY_BY_WIDTH_PJ[32 if width > 16 else (16 if width > 8 else 8)]


def op_energy_pj(fmt: FPFormat, op: str, lanes: int = 1) -> float:
    """Energy of one (possibly SIMD) slice operation.

    Vector operations activate ``lanes`` slice replicas and pay per lane;
    the remaining replicas are operand-silenced and contribute nothing.
    """
    if op in SEQUENTIAL_OPS:
        if fmt.name != "binary32":
            raise ValueError(f"{op} is only available in binary32")
        return SEQUENTIAL_ENERGY_PJ[op] * lanes
    if not supports(fmt):
        raise ValueError(f"{fmt} is not implemented by the FPU")
    if op == "fma":
        return FMA_ENERGY_PJ[fmt.name] * lanes
    if op not in ARITH_OPS and op not in COMPARE_OPS:
        raise ValueError(f"unknown FPU operation {op!r}")
    return ARITH_ENERGY_PJ[(fmt.name, op)] * lanes
