"""Operations and latencies of the transprecision FPU (paper §IV).

The unit supports three arithmetic operations -- addition, subtraction and
multiplication -- plus conversions: float-to-float casts among the four
formats and casts to/from integers.  Latency follows the paper exactly:

* binary32, binary16 and binary16alt arithmetic is pipelined with one
  stage: **latency 2 cycles, throughput 1 op/cycle**;
* binary8 arithmetic and *all* conversion operations take **1 cycle**;
* division and square root are not implemented by the unit; the platform
  executes them as multi-cycle sequential operations on binary32 only
  (RISC-V F-extension style), modeled in :data:`SEQUENTIAL_LATENCY`.
"""

from __future__ import annotations

from repro.core import BINARY8, BINARY16, BINARY16ALT, BINARY32, FPFormat

__all__ = [
    "ARITH_OPS",
    "FUSED_OPS",
    "CAST_OPS",
    "COMPARE_OPS",
    "SEQUENTIAL_OPS",
    "arithmetic_latency",
    "cast_latency",
    "sequential_latency",
    "simd_lanes",
    "supports",
    "SEQUENTIAL_LATENCY",
]

#: Arithmetic operations implemented by the computational slices.
ARITH_OPS = ("add", "sub", "mul")

#: Fused operations: an extension beyond the paper's unit (its FPnew
#: successors implement fused multiply-add in every slice).
FUSED_OPS = ("fma",)

#: Conversion operations (float/float and float/int directions).
CAST_OPS = ("cvt_ff", "cvt_fi", "cvt_if")

#: Comparisons execute in the slice comparators in a single cycle.
COMPARE_OPS = ("cmp",)

#: Multi-cycle sequential operations outside the transprecision unit.
SEQUENTIAL_OPS = ("div", "sqrt")

#: Latency in cycles of the sequential (non-slice) binary32 operations.
#: RI5CY-class cores iterate these; values follow typical F-extension
#: implementations for a 32-bit in-order core.
SEQUENTIAL_LATENCY = {"div": 14, "sqrt": 18}

_SUPPORTED = (BINARY8, BINARY16, BINARY16ALT, BINARY32)


def supports(fmt: FPFormat) -> bool:
    """True when the FPU has a slice for this format."""
    return any(fmt == s for s in _SUPPORTED)


def arithmetic_latency(fmt: FPFormat) -> int:
    """Cycles from issue to result for an ADD/SUB/MUL in ``fmt``.

    32-bit and 16-bit slices are pipelined with one stage (latency 2);
    the 8-bit slice completes in a single cycle.
    """
    if not supports(fmt):
        raise ValueError(f"{fmt} is not implemented by the FPU")
    return 1 if fmt.bits <= 8 else 2


def cast_latency() -> int:
    """All conversion operations complete in one cycle."""
    return 1


def sequential_latency(op: str) -> int:
    """Latency of a sequential op (div/sqrt), binary32 only."""
    if op not in SEQUENTIAL_LATENCY:
        raise ValueError(f"unknown sequential operation {op!r}")
    return SEQUENTIAL_LATENCY[op]


def simd_lanes(fmt: FPFormat) -> int:
    """Sub-word parallelism available for a format (paper Fig. 3).

    The 16-bit slices are duplicated (2 lanes), the 8-bit slices are
    quadruplicated (4 lanes); binary32 is scalar only.
    """
    if not supports(fmt):
        raise ValueError(f"{fmt} is not implemented by the FPU")
    return 32 // fmt.bits
