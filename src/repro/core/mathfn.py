"""Math helpers on FlexFloat values and arrays.

The transprecision FPU implements only ADD/SUB/MUL and conversions
(paper §IV); anything else (square roots, exponentials, division) runs on
the core as binary32 library code.  These helpers keep emulation
convenient -- they evaluate in double precision and sanitize the result --
while recording the operation under its own name so the analysis can
price it separately from slice arithmetic.
"""

from __future__ import annotations

import math
from typing import Union

from . import ops
from .array import FlexFloatArray
from .stats import record_op
from .value import FlexFloat

__all__ = ["sqrt", "exp", "log", "fabs", "fmin", "fmax", "clamp", "fma"]

FF = Union[FlexFloat, FlexFloatArray]


def _unary(x: FF, name: str, scalar_fn) -> FF:
    if isinstance(x, FlexFloatArray):
        record_op(x.fmt, name, x.size)
        # Pass the raw payload, not to_numpy(): the ufunc produces a
        # fresh buffer (the input is never written), and non-concrete
        # backend payloads must reach the backend un-collapsed.
        return FlexFloatArray._wrap(
            ops.unary_array(name, x._data, x.fmt), x.fmt
        )
    record_op(x.fmt, name)
    try:
        raw = scalar_fn(float(x))
    except ValueError:
        raw = math.nan
    except OverflowError:
        raw = math.inf
    return FlexFloat(raw, x.fmt)


def sqrt(x: FF) -> FF:
    """Square root, sanitized to the operand's format."""
    return _unary(x, "sqrt", math.sqrt)


def exp(x: FF) -> FF:
    """Exponential, sanitized to the operand's format."""
    return _unary(x, "exp", math.exp)


def log(x: FF) -> FF:
    """Natural logarithm, sanitized to the operand's format."""
    return _unary(x, "log", math.log)


def fabs(x: FF) -> FF:
    """Absolute value (free in hardware: sign-bit clear; not counted)."""
    return abs(x)


def fmin(a: FlexFloat, b: FlexFloat) -> FlexFloat:
    """Minimum of two same-format values (a comparison, not an FPU op)."""
    return a if a <= b else b


def fmax(a: FlexFloat, b: FlexFloat) -> FlexFloat:
    """Maximum of two same-format values."""
    return a if a >= b else b


def clamp(x: FlexFloat, low: float, high: float) -> FlexFloat:
    """Clamp ``x`` into ``[low, high]`` using format-sanitized bounds."""
    if x < low:
        return FlexFloat(low, x.fmt)
    if x > high:
        return FlexFloat(high, x.fmt)
    return x


def fma(a: FlexFloat, b: FlexFloat, c: FlexFloat) -> FlexFloat:
    """Fused multiply-add ``a*b + c`` with a *single* rounding.

    An extension beyond the paper's ADD/SUB/MUL unit (its successors add
    fused operations).  Exactness argument: all supported formats carry
    at most 24 significant bits, so the product of two operands has at
    most 48 -- exactly representable in the binary64 backing type; the
    final ``math.fma``-equivalent sum is then rounded once into the
    operand format.
    """
    if a.fmt != b.fmt or a.fmt != c.fmt:
        from .value import FormatMismatchError

        raise FormatMismatchError(a.fmt, b.fmt if a.fmt == c.fmt else c.fmt,
                                  "fma")
    if a.fmt.man_bits > 26:
        raise ValueError(
            "fma is exact only for formats with at most 26 mantissa bits"
        )
    record_op(a.fmt, "fma")
    exact_product = float(a) * float(b)  # exact: <= 48 significand bits
    return FlexFloat(exact_product + float(c), a.fmt)
