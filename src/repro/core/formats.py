"""Floating-point format descriptions (paper Fig. 1).

A format is an IEEE-754-style layout: one sign bit, ``exp_bits`` exponent
bits and ``man_bits`` explicit mantissa bits.  The paper's extended type
system consists of four such formats:

* ``binary8``     (1, 5, 2)  -- new; same dynamic range as binary16,
  three significant bits.
* ``binary16``    (1, 5, 10) -- IEEE half precision.
* ``binary16alt`` (1, 8, 7)  -- new; same dynamic range as binary32
  (identical layout to what is now called bfloat16).
* ``binary32``    (1, 8, 23) -- IEEE single precision.

``binary64`` (1, 11, 52) is also defined because FlexFloat backs every
value with a native double; quantizing to binary64 is the identity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "FPFormat",
    "BINARY8",
    "BINARY16",
    "BINARY16ALT",
    "BINARY32",
    "BINARY64",
    "STANDARD_FORMATS",
    "format_by_name",
]

#: Largest exponent field representable while backing values with binary64.
MAX_EXP_BITS = 11
#: Largest mantissa field representable while backing values with binary64.
MAX_MAN_BITS = 52


@dataclass(frozen=True)
class FPFormat:
    """An IEEE-754-style floating-point format ``(1, exp_bits, man_bits)``.

    Instances are immutable and hashable, so they can be used as dictionary
    keys (the statistics collector and the hardware model both do this).

    Attributes
    ----------
    exp_bits:
        Width of the exponent field in bits (1 .. 11).
    man_bits:
        Width of the explicit mantissa (significand) field in bits (0 .. 52).
    name:
        Optional human-readable name.  Anonymous formats render as
        ``flexfloat<e,m>`` in reprs, mirroring the C++ template syntax.
    """

    exp_bits: int
    man_bits: int
    name: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not 1 <= self.exp_bits <= MAX_EXP_BITS:
            raise ValueError(
                f"exp_bits must be in [1, {MAX_EXP_BITS}], got {self.exp_bits}"
            )
        if not 0 <= self.man_bits <= MAX_MAN_BITS:
            raise ValueError(
                f"man_bits must be in [0, {MAX_MAN_BITS}], got {self.man_bits}"
            )

    # ------------------------------------------------------------------
    # Derived layout properties
    # ------------------------------------------------------------------
    @property
    def bits(self) -> int:
        """Total storage width in bits (sign + exponent + mantissa)."""
        return 1 + self.exp_bits + self.man_bits

    @property
    def storage_bytes(self) -> int:
        """Bytes occupied in memory, rounded up to a whole byte."""
        return (self.bits + 7) // 8

    @property
    def bias(self) -> int:
        """Exponent bias, ``2**(exp_bits - 1) - 1``."""
        return (1 << (self.exp_bits - 1)) - 1

    @property
    def emax(self) -> int:
        """Largest unbiased exponent of a normal number (equals the bias)."""
        return self.bias

    @property
    def emin(self) -> int:
        """Smallest unbiased exponent of a normal number, ``1 - bias``."""
        return 1 - self.bias

    @property
    def precision(self) -> int:
        """Significant bits including the implicit leading one (p = m + 1)."""
        return self.man_bits + 1

    @property
    def max_value(self) -> float:
        """Largest finite representable magnitude."""
        return (2.0 - 2.0 ** -self.man_bits) * 2.0 ** self.emax

    @property
    def min_normal(self) -> float:
        """Smallest positive normal magnitude, ``2**emin``."""
        return 2.0 ** self.emin

    @property
    def min_subnormal(self) -> float:
        """Smallest positive subnormal magnitude, ``2**(emin - man_bits)``."""
        return 2.0 ** (self.emin - self.man_bits)

    @property
    def machine_epsilon(self) -> float:
        """Spacing between 1.0 and the next representable value."""
        return 2.0 ** -self.man_bits

    @property
    def dynamic_range_db(self) -> float:
        """Dynamic range, ``20*log10(max_value / min_normal)`` in dB.

        The paper defines dynamic range as the ratio between the largest
        and smallest representable values; we use the smallest *normal*
        value, the conventional choice.
        """
        import math

        return 20.0 * math.log10(self.max_value / self.min_normal)

    # ------------------------------------------------------------------
    # Serialization (result store / experiment runner)
    # ------------------------------------------------------------------
    def to_payload(self) -> list:
        """JSON-able description, ``[exp_bits, man_bits, name]``.

        Round-trips anonymous formats too, unlike a name-only encoding.
        """
        return [self.exp_bits, self.man_bits, self.name]

    @classmethod
    def from_payload(cls, payload) -> "FPFormat":
        """Inverse of :meth:`to_payload` (also accepts a bare name)."""
        if isinstance(payload, str):
            return format_by_name(payload)
        exp_bits, man_bits, name = payload
        return cls(int(exp_bits), int(man_bits), name=str(name))

    # ------------------------------------------------------------------
    # Relationships between formats
    # ------------------------------------------------------------------
    def covers(self, other: "FPFormat") -> bool:
        """Return True if every value of ``other`` is exactly representable.

        True when this format has at least as many exponent bits and at
        least as many mantissa bits.  ``binary16alt.covers(binary8)`` is
        False (8 vs 5 exponent bits but 7 vs 2 mantissa bits is fine;
        the exponent *range* differs so subnormal b8 values still fit --
        ``covers`` is intentionally the conservative field-width check).
        """
        return (
            self.exp_bits >= other.exp_bits and self.man_bits >= other.man_bits
        )

    def same_dynamic_range(self, other: "FPFormat") -> bool:
        """True when both formats share the exponent width.

        Conversions between such formats never saturate (paper §III-A:
        binary8 mirrors binary16's range; binary16alt mirrors binary32's).
        """
        return self.exp_bits == other.exp_bits

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - trivial
        if self.name:
            return self.name
        return f"flexfloat<{self.exp_bits},{self.man_bits}>"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return repr(self)


BINARY8 = FPFormat(5, 2, name="binary8")
BINARY16 = FPFormat(5, 10, name="binary16")
BINARY16ALT = FPFormat(8, 7, name="binary16alt")
BINARY32 = FPFormat(8, 23, name="binary32")
BINARY64 = FPFormat(11, 52, name="binary64")

#: The formats of the paper's extended type system, narrowest first.
STANDARD_FORMATS = (BINARY8, BINARY16, BINARY16ALT, BINARY32, BINARY64)

_BY_NAME = {fmt.name: fmt for fmt in STANDARD_FORMATS}


def format_by_name(name: str) -> FPFormat:
    """Look up one of the standard formats by its name.

    Raises ``KeyError`` with the list of known names for typos.
    """
    try:
        return _BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(_BY_NAME))
        raise KeyError(f"unknown format {name!r}; known formats: {known}") from None
