"""Bit-exact quantization of binary64 values to arbitrary (e, m) formats.

This module is the Python equivalent of FlexFloat's *sanitization* step:
arithmetic is performed on native doubles and every result is rounded back
to the target format.  Rounding is IEEE 754 round-to-nearest-even with
graceful underflow (subnormals), signed-zero preservation and overflow to
infinity, so for any format with ``man_bits <= 24`` the emulated results
are bit-identical to a correctly-rounding native unit (the classical
``2p + 2`` innocuous-double-rounding guarantee: binary64 carries 53 bits,
more than twice the 24-bit single-precision significand plus two).

Two implementations are provided and tested against each other:

* :func:`quantize` -- scalar, exact integer arithmetic on the IEEE bit
  pattern (arbitrary-precision Python ints, no rounding shortcuts);
* :func:`quantize_array` -- vectorized numpy implementation used by
  :class:`repro.core.array.FlexFloatArray`.

:func:`encode` / :func:`decode` convert between quantized values and the
packed integer bit patterns of the target format, which is what the
hardware unit moves through memory.

This module is the *reference* implementation: it is what
:class:`repro.core.backend.ReferenceBackend` executes, and the oracle
every other backend (e.g. the fast numpy engine) is cross-checked
against bit for bit.  Library code should normally go through the
dispatching versions in :mod:`repro.core.ops` instead of calling these
directly.
"""

from __future__ import annotations

import math
import struct

import numpy as np

from .formats import FPFormat

__all__ = [
    "quantize",
    "quantize_array",
    "encode",
    "decode",
    "encode_array",
    "decode_array",
    "is_exact",
]

_MASK52 = (1 << 52) - 1
_EXP_MASK = 0x7FF


def _float_to_bits(x: float) -> int:
    return struct.unpack("<Q", struct.pack("<d", x))[0]


def _bits_to_float(bits: int) -> float:
    return struct.unpack("<d", struct.pack("<Q", bits))[0]


def _rne_shift(value: int, shift: int) -> int:
    """Shift ``value`` right by ``shift`` bits, rounding to nearest-even."""
    if shift <= 0:
        return value << (-shift)
    half = 1 << (shift - 1)
    rem = value & ((1 << shift) - 1)
    out = value >> shift
    if rem > half or (rem == half and out & 1):
        out += 1
    return out


def _decompose(x: float) -> tuple[int, int, int]:
    """Split a finite non-zero double into ``(sign, ex, sig53)``.

    The value equals ``(-1)**sign * sig53 * 2**(ex - 52)`` with
    ``sig53`` in ``[2**52, 2**53)`` -- i.e. the significand normalized to
    53 bits regardless of whether the input was a subnormal double.
    """
    bits = _float_to_bits(x)
    sign = bits >> 63
    exp_field = (bits >> 52) & _EXP_MASK
    frac = bits & _MASK52
    if exp_field == 0:
        # Subnormal double: value = frac * 2**-1074.  Normalize.
        top = frac.bit_length() - 1
        sig53 = frac << (52 - top)
        ex = top - 1074
    else:
        sig53 = (1 << 52) | frac
        ex = exp_field - 1023
    return sign, ex, sig53


def quantize(x: float, fmt: FPFormat) -> float:
    """Round ``x`` to the nearest value representable in ``fmt``.

    Round-to-nearest-even; subnormals flush gracefully; magnitudes beyond
    the largest finite value round to infinity exactly when IEEE 754 says
    they must (i.e. at or above ``maxfinite + ulp/2``).  Signed zeros and
    infinities pass through; NaN stays NaN.
    """
    x = float(x)
    if x != x or x == math.inf or x == -math.inf:
        return x
    if x == 0.0:
        return x  # preserves the sign of zero

    sign, ex, sig53 = _decompose(x)
    # Exponent of one unit in the last place of the destination format;
    # below emin the quantum is pinned to the subnormal spacing.
    q = max(ex, fmt.emin) - fmt.man_bits
    shift = q - ex + 52
    rounded = _rne_shift(sig53, shift)
    if rounded == 0:
        return -0.0 if sign else 0.0
    # Overflow check: the rounded magnitude may exceed the largest finite
    # value, in which case IEEE round-to-nearest maps it to infinity.
    if rounded.bit_length() - 1 + q > fmt.emax:
        return -math.inf if sign else math.inf
    magnitude = math.ldexp(rounded, q)  # exact: rounded < 2**54
    return -magnitude if sign else magnitude


def is_exact(x: float, fmt: FPFormat) -> bool:
    """True when ``x`` is already exactly representable in ``fmt``."""
    return quantize(x, fmt) == x or x != x


# ----------------------------------------------------------------------
# Vectorized path
# ----------------------------------------------------------------------
def quantize_array(values: np.ndarray, fmt: FPFormat) -> np.ndarray:
    """Vectorized :func:`quantize` over a float64 numpy array.

    Bit-identical to the scalar path (property-tested); returns a new
    float64 array of the same shape.
    """
    a = np.asarray(values, dtype=np.float64)
    if fmt.exp_bits == 11 and fmt.man_bits == 52:
        return a.copy()  # binary64 is the backing type: identity

    # Non-finite elements are routed around the integer pipeline (they are
    # re-selected from the input at the end); replace them with a benign
    # value so frexp/astype never see them.
    finite = np.isfinite(a)
    a_safe = np.where(finite, a, 1.0)
    mantissa, exponent = np.frexp(a_safe)
    # |a| = |mantissa| * 2**exponent with |mantissa| in [0.5, 1), so the
    # 53-bit integer significand is |mantissa| * 2**53 and the unbiased
    # exponent of the leading bit is exponent - 1.
    sig = np.round(np.abs(mantissa) * 9007199254740992.0).astype(np.int64)
    ex = exponent.astype(np.int64) - 1

    q = np.maximum(ex, fmt.emin) - fmt.man_bits
    shift = q - ex + 52
    # Shifts of 54 or more always round to zero (the 53-bit significand is
    # strictly below the rounding half-point); clamp so int64 shifts stay
    # within range.
    shift_c = np.minimum(np.maximum(shift, 1), 62)
    half = np.int64(1) << (shift_c - 1)
    mask = (np.int64(1) << shift_c) - 1
    rem = sig & mask
    out = sig >> shift_c
    round_up = (rem > half) | ((rem == half) & ((out & 1) == 1))
    rounded = out + round_up.astype(np.int64)
    rounded = np.where(shift <= 0, sig, rounded)
    rounded = np.where(shift >= 54, np.int64(0), rounded)

    with np.errstate(over="ignore"):
        # Exact products below the overflow threshold; anything that
        # overflows double is far beyond max_value and becomes inf next.
        magnitude = np.ldexp(rounded.astype(np.float64), q)
    magnitude = np.where(magnitude > fmt.max_value, np.inf, magnitude)
    result = np.copysign(magnitude, a_safe)

    return np.where(finite & (a != 0.0), result, a)


# ----------------------------------------------------------------------
# Bit-pattern packing
# ----------------------------------------------------------------------
def encode(x: float, fmt: FPFormat) -> int:
    """Pack a value into the ``fmt.bits``-wide integer bit pattern.

    ``x`` is quantized first, so any double is accepted.  NaN encodes as a
    quiet NaN (most-significant mantissa bit set); for formats with
    ``man_bits == 0`` NaN and infinity share the all-ones exponent
    encoding, a documented limitation of mantissa-less formats.
    """
    v = quantize(x, fmt)
    e, m = fmt.exp_bits, fmt.man_bits
    exp_all_ones = (1 << e) - 1
    if v != v:
        quiet = 1 << (m - 1) if m > 0 else 0
        return (exp_all_ones << m) | quiet
    sign = 1 if math.copysign(1.0, v) < 0 else 0
    if v == 0.0:
        return sign << (e + m)
    if math.isinf(v):
        return (sign << (e + m)) | (exp_all_ones << m)
    _, ex, sig53 = _decompose(v)
    if ex >= fmt.emin:
        biased = ex + fmt.bias
        frac = (sig53 - (1 << 52)) >> (52 - m)
        return (sign << (e + m)) | (biased << m) | frac
    # Subnormal in the destination: value = frac * 2**(emin - m).
    frac = int(math.ldexp(abs(v), m - fmt.emin))
    return (sign << (e + m)) | frac


def decode(pattern: int, fmt: FPFormat) -> float:
    """Unpack a ``fmt.bits``-wide integer bit pattern into a double."""
    e, m = fmt.exp_bits, fmt.man_bits
    if not 0 <= pattern < (1 << fmt.bits):
        raise ValueError(
            f"pattern {pattern:#x} does not fit in {fmt.bits} bits"
        )
    sign = (pattern >> (e + m)) & 1
    biased = (pattern >> m) & ((1 << e) - 1)
    frac = pattern & ((1 << m) - 1)
    if biased == (1 << e) - 1:
        if frac:
            return math.nan
        return -math.inf if sign else math.inf
    if biased == 0:
        magnitude = math.ldexp(frac, fmt.emin - m)
    else:
        magnitude = math.ldexp((1 << m) | frac, biased - fmt.bias - m)
    return -magnitude if sign else magnitude


def encode_array(values: np.ndarray, fmt: FPFormat) -> np.ndarray:
    """Vectorized :func:`encode`; returns a uint64 array of bit patterns."""
    a = quantize_array(np.asarray(values, dtype=np.float64), fmt)
    e, m = fmt.exp_bits, fmt.man_bits
    exp_all_ones = np.uint64((1 << e) - 1)

    finite = np.isfinite(a)
    a_safe = np.where(finite, a, 1.0)
    sign = (np.signbit(a)).astype(np.uint64)
    mantissa, exponent = np.frexp(np.abs(a_safe))
    sig = np.round(mantissa * 9007199254740992.0).astype(np.uint64)
    ex = exponent.astype(np.int64) - 1

    normal = finite & (a != 0.0) & (ex >= fmt.emin)
    biased = np.where(normal, ex + fmt.bias, 0).astype(np.uint64)
    frac_normal = np.where(normal, sig - np.uint64(1 << 52), np.uint64(0))
    frac_normal = frac_normal >> np.uint64(52 - m) if m < 52 else frac_normal
    # Destination subnormals: the fraction field is |v| / 2**(emin - m).
    # The scaling overflows for normal-path elements; those lanes are
    # masked out right below, so the overflow is benign.
    with np.errstate(over="ignore"):
        frac_sub = np.ldexp(np.abs(a_safe), m - fmt.emin)
    frac_sub = np.where(normal | ~finite, 0.0, frac_sub)
    frac = np.where(normal, frac_normal, frac_sub.astype(np.uint64))

    pattern = (
        (sign << np.uint64(e + m)) | (biased << np.uint64(m)) | frac
    )
    inf_pat = (sign << np.uint64(e + m)) | (exp_all_ones << np.uint64(m))
    pattern = np.where(np.isinf(a), inf_pat, pattern)
    quiet = np.uint64((1 << (m - 1)) if m > 0 else 0)
    nan_pat = (exp_all_ones << np.uint64(m)) | quiet
    pattern = np.where(np.isnan(a), nan_pat, pattern)
    zero_pat = sign << np.uint64(e + m)
    pattern = np.where(a == 0.0, zero_pat, pattern)
    return pattern.astype(np.uint64)


def decode_array(patterns: np.ndarray, fmt: FPFormat) -> np.ndarray:
    """Vectorized :func:`decode`; returns a float64 array."""
    p = np.asarray(patterns, dtype=np.uint64)
    e, m = fmt.exp_bits, fmt.man_bits
    sign = ((p >> np.uint64(e + m)) & np.uint64(1)).astype(np.float64)
    biased = ((p >> np.uint64(m)) & np.uint64((1 << e) - 1)).astype(np.int64)
    frac = (p & np.uint64((1 << m) - 1)).astype(np.int64)

    is_special = biased == (1 << e) - 1
    is_sub = biased == 0
    magnitude = np.ldexp(
        np.where(is_sub, frac, frac | (1 << m)).astype(np.float64),
        np.where(is_sub, fmt.emin - m, biased - fmt.bias - m).astype(np.int64),
    )
    result = np.where(sign > 0, -magnitude, magnitude)
    result = np.where(is_special & (frac == 0),
                      np.where(sign > 0, -np.inf, np.inf), result)
    result = np.where(is_special & (frac != 0), np.nan, result)
    return result
