"""The FlexFloat scalar type (paper §III-A).

Mirrors the C++ ``flexfloat<e, m>`` template class in Python:

* every value is *backed by a native double* and kept sanitized, i.e. the
  stored double is always exactly representable in the instance's format;
* arithmetic between two FlexFloats of **different** formats raises
  :class:`FormatMismatchError` -- the Python analogue of the compile-time
  error the C++ template produces, which is what gives programmers
  fine-grained control over intermediate precision;
* plain Python ints/floats are accepted as operands (the paper provides
  implicit constructors for standard FP literals);
* casts between formats are explicit, via :meth:`FlexFloat.cast`;
* conversion back to a native float is explicit, via ``float(x)``.

Every arithmetic operation and cast reports to :mod:`repro.core.stats`
when a collector is active, and all arithmetic/quantization routes
through :mod:`repro.core.ops`, so the active session's backend executes
it.
"""

from __future__ import annotations

import math
from typing import Union

from . import ops
from .formats import FPFormat
from .stats import record_cast, record_op

__all__ = ["FlexFloat", "FormatMismatchError"]

Number = Union[int, float]


class FormatMismatchError(TypeError):
    """Raised when two FlexFloats of different formats meet in one operator.

    The C++ library rejects such programs at compile time; rejecting them
    at run time is the closest faithful behaviour an interpreted language
    can offer.  Insert an explicit ``x.cast(fmt)`` to mix formats.
    """

    def __init__(self, left: FPFormat, right: FPFormat, op: str) -> None:
        super().__init__(
            f"implicit cast between FlexFloat formats is not allowed: "
            f"{left} {op} {right}; insert an explicit .cast(...)"
        )
        self.left = left
        self.right = right
        self.op = op


class FlexFloat:
    """A floating-point value sanitized to an arbitrary ``(e, m)`` format."""

    __slots__ = ("_fmt", "_value")

    def __init__(self, value: Number | "FlexFloat", fmt: FPFormat) -> None:
        if isinstance(value, FlexFloat):
            # Explicit conversion constructor (records the cast).
            record_cast(value._fmt, fmt)
            raw = value._value
        else:
            raw = float(value)
        object.__setattr__(self, "_fmt", fmt)
        object.__setattr__(self, "_value", ops.quantize(raw, fmt))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def fmt(self) -> FPFormat:
        """The format this value is sanitized to."""
        return self._fmt

    @property
    def bits(self) -> int:
        """The packed bit pattern of the value in its format."""
        return ops.encode(self._value, self._fmt)

    @classmethod
    def from_bits(cls, pattern: int, fmt: FPFormat) -> "FlexFloat":
        """Build a value from a packed bit pattern."""
        return cls(ops.decode(pattern, fmt), fmt)

    @classmethod
    def _from_raw(cls, payload, fmt: FPFormat) -> "FlexFloat":
        """Wrap an already-sanitized backend payload without re-quantizing."""
        out = object.__new__(cls)
        object.__setattr__(out, "_fmt", fmt)
        object.__setattr__(out, "_value", payload)
        return out

    def cast(self, fmt: FPFormat) -> "FlexFloat":
        """Explicitly convert to another format (counted as a cast)."""
        record_cast(self._fmt, fmt)
        out = object.__new__(FlexFloat)
        object.__setattr__(out, "_fmt", fmt)
        object.__setattr__(out, "_value", ops.quantize(self._value, fmt))
        return out

    def __float__(self) -> float:
        value = self._value
        if type(value) is float:
            return value
        return ops.collapse(value, self._fmt)

    def __int__(self) -> int:
        return int(self._value)

    def __bool__(self) -> bool:
        return bool(self._value)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def _coerce(self, other: Number | "FlexFloat", op: str) -> float:
        """Return the backing double of ``other``, enforcing format rules."""
        if isinstance(other, FlexFloat):
            if other._fmt != self._fmt:
                raise FormatMismatchError(self._fmt, other._fmt, op)
            return other._value
        if isinstance(other, (int, float)):
            # Implicit constructor from a standard FP literal: the operand
            # is first sanitized to this format, as the C++ implicit
            # conversion would do.
            return ops.quantize(float(other), self._fmt)
        return NotImplemented  # type: ignore[return-value]

    def _make(self, raw: float) -> "FlexFloat":
        out = object.__new__(FlexFloat)
        object.__setattr__(out, "_fmt", self._fmt)
        object.__setattr__(out, "_value", ops.quantize(raw, self._fmt))
        return out

    def _binary(self, other, op: str, swap: bool = False) -> "FlexFloat":
        rhs = self._coerce(other, op)
        if rhs is NotImplemented:
            return NotImplemented
        record_op(self._fmt, op)
        a, b = (rhs, self._value) if swap else (self._value, rhs)
        out = object.__new__(FlexFloat)
        object.__setattr__(out, "_fmt", self._fmt)
        object.__setattr__(
            out, "_value", ops.binary_scalar(op, a, b, self._fmt)
        )
        return out

    def __add__(self, other):
        return self._binary(other, "add")

    def __radd__(self, other):
        return self._binary(other, "add", swap=True)

    def __sub__(self, other):
        return self._binary(other, "sub")

    def __rsub__(self, other):
        return self._binary(other, "sub", swap=True)

    def __mul__(self, other):
        return self._binary(other, "mul")

    def __rmul__(self, other):
        return self._binary(other, "mul", swap=True)

    def __truediv__(self, other):
        return self._binary(other, "div")

    def __rtruediv__(self, other):
        return self._binary(other, "div", swap=True)

    def __neg__(self) -> "FlexFloat":
        # Sign flips are free in hardware (sign-bit inversion); they are
        # not counted as FPU operations.
        return self._make(-self._value)

    def __pos__(self) -> "FlexFloat":
        return self

    def __abs__(self) -> "FlexFloat":
        return self._make(abs(self._value))

    # ------------------------------------------------------------------
    # Comparisons: exact on the backing doubles.  Cross-format comparison
    # is rejected like cross-format arithmetic.
    # ------------------------------------------------------------------
    def _cmp_value(self, other, op: str) -> float:
        if isinstance(other, FlexFloat):
            if other._fmt != self._fmt:
                raise FormatMismatchError(self._fmt, other._fmt, op)
            return other._value
        if isinstance(other, (int, float)):
            return float(other)
        return NotImplemented  # type: ignore[return-value]

    def __eq__(self, other) -> bool:
        rhs = self._cmp_value(other, "==")
        if rhs is NotImplemented:
            return NotImplemented
        return self._value == rhs

    def __ne__(self, other) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __lt__(self, other) -> bool:
        rhs = self._cmp_value(other, "<")
        if rhs is NotImplemented:
            return NotImplemented
        return self._value < rhs

    def __le__(self, other) -> bool:
        rhs = self._cmp_value(other, "<=")
        if rhs is NotImplemented:
            return NotImplemented
        return self._value <= rhs

    def __gt__(self, other) -> bool:
        rhs = self._cmp_value(other, ">")
        if rhs is NotImplemented:
            return NotImplemented
        return self._value > rhs

    def __ge__(self, other) -> bool:
        rhs = self._cmp_value(other, ">=")
        if rhs is NotImplemented:
            return NotImplemented
        return self._value >= rhs

    def __hash__(self) -> int:
        return hash((self._fmt, self._value))

    # ------------------------------------------------------------------
    def is_nan(self) -> bool:
        return math.isnan(self._value)

    def is_inf(self) -> bool:
        return math.isinf(self._value)

    def __repr__(self) -> str:
        width = (self._fmt.bits + 3) // 4
        return (
            f"{self._fmt!r}({self._value!r} "
            f"[0x{self.bits:0{width}x}])"
        )

