"""FlexFloatArray: vectorized FlexFloat emulation over numpy.

The paper's C++ library is scalar; precision tuning, however, runs the
application hundreds of times, so this reproduction adds an array type
with identical semantics to make tuning runs fast:

* the payload is a float64 ndarray that is *always* sanitized to the
  array's format (every element exactly representable);
* elementwise operations require matching formats, exactly like
  :class:`repro.core.value.FlexFloat`; casts are explicit;
* reductions (:meth:`sum`, :meth:`dot`) quantize after **every** addition
  level using a balanced binary tree, emulating the rounding pattern of
  a vectorized/unrolled accumulator rather than computing in float64 and
  rounding once -- the difference is exactly the rounding-error structure
  the precision tuner must observe;
* all operations report elementwise counts to :mod:`repro.core.stats`
  and execute through :mod:`repro.core.ops`, i.e. on the active
  session's backend (the fast backend fuses the elementwise operator
  with quantize-on-write).
"""

from __future__ import annotations

import math
from typing import Iterator, Union

import numpy as np

from . import ops
from .formats import FPFormat
from .stats import record_cast, record_op
from .value import FlexFloat, FormatMismatchError

__all__ = ["FlexFloatArray"]

Operand = Union["FlexFloatArray", FlexFloat, int, float, np.ndarray]


class FlexFloatArray:
    """An n-dimensional array of values sanitized to one (e, m) format."""

    __slots__ = ("_fmt", "_data")

    def __init__(self, values, fmt: FPFormat) -> None:
        if isinstance(values, FlexFloatArray):
            # A conversion constructor is a cast: the payload is already
            # backend-sanitized, so route through the cast hook (which
            # for concrete backends is plain re-quantization).
            record_cast(values._fmt, fmt, values.size)
            data = ops.cast_array(values._data, fmt)
        elif isinstance(values, FlexFloat):
            record_cast(values.fmt, fmt)
            data = ops.quantize_array(
                np.asarray(float(values), dtype=np.float64), fmt
            )
        else:
            data = ops.quantize_array(
                np.asarray(values, dtype=np.float64), fmt
            )
        object.__setattr__(self, "_fmt", fmt)
        object.__setattr__(self, "_data", data)

    @classmethod
    def _wrap(cls, data: np.ndarray, fmt: FPFormat) -> "FlexFloatArray":
        """Build from an already-sanitized payload without re-quantizing."""
        out = object.__new__(cls)
        object.__setattr__(out, "_fmt", fmt)
        object.__setattr__(out, "_data", data)
        return out

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def fmt(self) -> FPFormat:
        return self._fmt

    @property
    def shape(self) -> tuple[int, ...]:
        off = ops.payload_offset()
        if off:
            return self._data.shape[: self._data.ndim - off]
        return self._data.shape

    @property
    def size(self) -> int:
        off = ops.payload_offset()
        if off:
            return int(math.prod(self._data.shape[: self._data.ndim - off]))
        return int(self._data.size)

    @property
    def ndim(self) -> int:
        return self._data.ndim - ops.payload_offset()

    def __len__(self) -> int:
        return len(self._data)

    def to_numpy(self) -> np.ndarray:
        """Explicit conversion to a plain float64 array (copy)."""
        return ops.collapse_array(self._data, self._fmt)

    def cast(self, fmt: FPFormat) -> "FlexFloatArray":
        """Explicit elementwise format conversion (counted as casts)."""
        record_cast(self._fmt, fmt, self.size)
        return FlexFloatArray._wrap(ops.cast_array(self._data, fmt), fmt)

    # ------------------------------------------------------------------
    # Indexing
    # ------------------------------------------------------------------
    def __getitem__(self, index) -> Union[FlexFloat, "FlexFloatArray"]:
        picked = self._data[index]
        special = ops.item_payload(picked, self._fmt)
        if special is not None:
            return FlexFloat._from_raw(special, self._fmt)
        if np.isscalar(picked) or picked.ndim == 0:
            return FlexFloat(float(picked), self._fmt)
        return FlexFloatArray._wrap(np.ascontiguousarray(picked), self._fmt)

    def __setitem__(self, index, value) -> None:
        if isinstance(value, FlexFloatArray):
            if value._fmt != self._fmt:
                raise FormatMismatchError(self._fmt, value._fmt, "setitem")
            self._data[index] = value._data
        elif isinstance(value, FlexFloat):
            if value.fmt != self._fmt:
                raise FormatMismatchError(self._fmt, value.fmt, "setitem")
            payload = value._value
            if type(payload) is float:
                self._data[index] = payload
            else:
                self._data[index] = np.asarray(payload)
        else:
            self._data[index] = ops.quantize_array(
                np.asarray(value, dtype=np.float64), self._fmt
            )

    def __iter__(self) -> Iterator[Union[FlexFloat, "FlexFloatArray"]]:
        for i in range(len(self)):
            yield self[i]

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def _coerce(self, other: Operand, op: str):
        if isinstance(other, FlexFloatArray):
            if other._fmt != self._fmt:
                raise FormatMismatchError(self._fmt, other._fmt, op)
            return other._data
        if isinstance(other, FlexFloat):
            if other.fmt != self._fmt:
                raise FormatMismatchError(self._fmt, other.fmt, op)
            # The backing payload, not float(other): identical for
            # concrete backends, and abstract payloads survive intact.
            return other._value
        if isinstance(other, (int, float)):
            return ops.quantize_array(
                np.asarray(float(other), dtype=np.float64), self._fmt
            )
        if isinstance(other, np.ndarray):
            return ops.quantize_array(other.astype(np.float64), self._fmt)
        return NotImplemented

    def _binary(
        self, other: Operand, op: str, swap: bool = False
    ) -> "FlexFloatArray":
        rhs = self._coerce(other, op)
        if rhs is NotImplemented:
            return NotImplemented
        off = ops.payload_offset()
        rhs_shape: tuple[int, ...] = ()
        if isinstance(rhs, np.ndarray):
            rhs_shape = rhs.shape[: rhs.ndim - off] if off else rhs.shape
        record_op(
            self._fmt,
            op,
            int(math.prod(np.broadcast_shapes(self.shape, rhs_shape))),
        )
        a, b = (rhs, self._data) if swap else (self._data, rhs)
        return FlexFloatArray._wrap(
            ops.binary_array(op, a, b, self._fmt), self._fmt
        )

    def __add__(self, other):
        return self._binary(other, "add")

    def __radd__(self, other):
        return self._binary(other, "add", swap=True)

    def __sub__(self, other):
        return self._binary(other, "sub")

    def __rsub__(self, other):
        return self._binary(other, "sub", swap=True)

    def __mul__(self, other):
        return self._binary(other, "mul")

    def __rmul__(self, other):
        return self._binary(other, "mul", swap=True)

    def __truediv__(self, other):
        return self._binary(other, "div")

    def __rtruediv__(self, other):
        return self._binary(other, "div", swap=True)

    def __neg__(self) -> "FlexFloatArray":
        return FlexFloatArray._wrap(
            ops.neg_array(self._data, self._fmt), self._fmt
        )

    def __abs__(self) -> "FlexFloatArray":
        return FlexFloatArray._wrap(np.abs(self._data), self._fmt)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: int | None = None):
        """Tree-reduction sum with per-level sanitization.

        Emulates a vectorized accumulator: additions at each level of a
        balanced binary tree, each result rounded to the array format.
        ``n - 1`` additions per reduced lane are recorded, the same count
        a hardware loop would execute.  With ``axis``, reduces along that
        axis and returns a :class:`FlexFloatArray`; without, reduces
        everything to one :class:`FlexFloat`.
        """
        special = ops.sum_reduce(self._data, axis, self._fmt)
        if special is not None:
            payload, n_adds = special
            record_op(self._fmt, "add", n_adds)
            if axis is None:
                return FlexFloat._from_raw(payload, self._fmt)
            return FlexFloatArray._wrap(payload, self._fmt)
        if axis is None:
            work = self._data.reshape(1, -1)
        else:
            work = np.moveaxis(self._data, axis, -1)
            lead = work.shape[:-1]
            work = work.reshape(-1, work.shape[-1])
        n = work.shape[1]
        if n == 0:
            reduced = np.zeros(work.shape[0])
        else:
            record_op(self._fmt, "add", (n - 1) * work.shape[0])
            reduced = ops.tree_sum(work, self._fmt)
        if axis is None:
            return FlexFloat(float(reduced[0]), self._fmt)
        return FlexFloatArray._wrap(
            np.ascontiguousarray(reduced.reshape(lead)), self._fmt
        )

    def dot(self, other: "FlexFloatArray") -> FlexFloat:
        """Elementwise product followed by the tree-reduction sum."""
        return (self * other).sum()

    def take(self, indices) -> "FlexFloatArray":
        """Gather elements (pure addressing: no FP operations counted)."""
        picked = self._data[np.asarray(indices)]
        return FlexFloatArray._wrap(np.ascontiguousarray(picked), self._fmt)

    def min(self) -> FlexFloat:
        record_op(self._fmt, "min", max(self.size - 1, 0))
        payload = ops.array_minmax(self._data, self._fmt, "min")
        if type(payload) is float:
            return FlexFloat(payload, self._fmt)
        return FlexFloat._from_raw(payload, self._fmt)

    def max(self) -> FlexFloat:
        record_op(self._fmt, "max", max(self.size - 1, 0))
        payload = ops.array_minmax(self._data, self._fmt, "max")
        if type(payload) is float:
            return FlexFloat(payload, self._fmt)
        return FlexFloat._from_raw(payload, self._fmt)

    # ------------------------------------------------------------------
    # Shape utilities (no arithmetic, no stats)
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "FlexFloatArray":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        off = ops.payload_offset()
        if off:
            # Reshape the logical dims only; trailing payload axes ride
            # along untouched (numpy resolves -1 against the logical
            # element count because the payload axes stay explicit).
            data = self._data
            tail = data.shape[data.ndim - off:]
            return FlexFloatArray._wrap(
                data.reshape(tuple(shape) + tail), self._fmt
            )
        return FlexFloatArray._wrap(self._data.reshape(shape), self._fmt)

    def copy(self) -> "FlexFloatArray":
        return FlexFloatArray._wrap(self._data.copy(), self._fmt)

    def transpose(self) -> "FlexFloatArray":
        off = ops.payload_offset()
        if off:
            data = self._data
            lead = data.ndim - off
            axes = tuple(reversed(range(lead))) + tuple(
                range(lead, data.ndim)
            )
            return FlexFloatArray._wrap(
                np.ascontiguousarray(data.transpose(axes)), self._fmt
            )
        return FlexFloatArray._wrap(
            np.ascontiguousarray(self._data.T), self._fmt
        )

    @property
    def T(self) -> "FlexFloatArray":
        return self.transpose()

    def __repr__(self) -> str:
        return f"FlexFloatArray({self._fmt!r}, shape={self.shape})"
