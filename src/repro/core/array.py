"""FlexFloatArray: vectorized FlexFloat emulation over numpy.

The paper's C++ library is scalar; precision tuning, however, runs the
application hundreds of times, so this reproduction adds an array type
with identical semantics to make tuning runs fast:

* the payload is a float64 ndarray that is *always* sanitized to the
  array's format (every element exactly representable);
* elementwise operations require matching formats, exactly like
  :class:`repro.core.value.FlexFloat`; casts are explicit;
* reductions (:meth:`sum`, :meth:`dot`) quantize after **every** addition
  level using a balanced binary tree, emulating the rounding pattern of
  a vectorized/unrolled accumulator rather than computing in float64 and
  rounding once -- the difference is exactly the rounding-error structure
  the precision tuner must observe;
* all operations report elementwise counts to :mod:`repro.core.stats`
  and execute through :mod:`repro.core.ops`, i.e. on the active
  session's backend (the fast backend fuses the elementwise operator
  with quantize-on-write).
"""

from __future__ import annotations

from typing import Iterator, Union

import numpy as np

from . import ops
from .formats import FPFormat
from .stats import record_cast, record_op
from .value import FlexFloat, FormatMismatchError

__all__ = ["FlexFloatArray"]

Operand = Union["FlexFloatArray", FlexFloat, int, float, np.ndarray]


class FlexFloatArray:
    """An n-dimensional array of values sanitized to one (e, m) format."""

    __slots__ = ("_fmt", "_data")

    def __init__(self, values, fmt: FPFormat) -> None:
        if isinstance(values, FlexFloatArray):
            record_cast(values._fmt, fmt, values.size)
            payload = values._data
        elif isinstance(values, FlexFloat):
            record_cast(values.fmt, fmt)
            payload = np.asarray(float(values), dtype=np.float64)
        else:
            payload = np.asarray(values, dtype=np.float64)
        object.__setattr__(self, "_fmt", fmt)
        object.__setattr__(self, "_data", ops.quantize_array(payload, fmt))

    @classmethod
    def _wrap(cls, data: np.ndarray, fmt: FPFormat) -> "FlexFloatArray":
        """Build from an already-sanitized payload without re-quantizing."""
        out = object.__new__(cls)
        object.__setattr__(out, "_fmt", fmt)
        object.__setattr__(out, "_data", data)
        return out

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def fmt(self) -> FPFormat:
        return self._fmt

    @property
    def shape(self) -> tuple[int, ...]:
        return self._data.shape

    @property
    def size(self) -> int:
        return int(self._data.size)

    @property
    def ndim(self) -> int:
        return self._data.ndim

    def __len__(self) -> int:
        return len(self._data)

    def to_numpy(self) -> np.ndarray:
        """Explicit conversion to a plain float64 array (copy)."""
        return self._data.copy()

    def cast(self, fmt: FPFormat) -> "FlexFloatArray":
        """Explicit elementwise format conversion (counted as casts)."""
        record_cast(self._fmt, fmt, self.size)
        return FlexFloatArray._wrap(ops.quantize_array(self._data, fmt), fmt)

    # ------------------------------------------------------------------
    # Indexing
    # ------------------------------------------------------------------
    def __getitem__(self, index) -> Union[FlexFloat, "FlexFloatArray"]:
        picked = self._data[index]
        if np.isscalar(picked) or picked.ndim == 0:
            return FlexFloat(float(picked), self._fmt)
        return FlexFloatArray._wrap(np.ascontiguousarray(picked), self._fmt)

    def __setitem__(self, index, value) -> None:
        if isinstance(value, FlexFloatArray):
            if value._fmt != self._fmt:
                raise FormatMismatchError(self._fmt, value._fmt, "setitem")
            self._data[index] = value._data
        elif isinstance(value, FlexFloat):
            if value.fmt != self._fmt:
                raise FormatMismatchError(self._fmt, value.fmt, "setitem")
            self._data[index] = float(value)
        else:
            self._data[index] = ops.quantize_array(
                np.asarray(value, dtype=np.float64), self._fmt
            )

    def __iter__(self) -> Iterator[Union[FlexFloat, "FlexFloatArray"]]:
        for i in range(len(self)):
            yield self[i]

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def _coerce(self, other: Operand, op: str):
        if isinstance(other, FlexFloatArray):
            if other._fmt != self._fmt:
                raise FormatMismatchError(self._fmt, other._fmt, op)
            return other._data
        if isinstance(other, FlexFloat):
            if other.fmt != self._fmt:
                raise FormatMismatchError(self._fmt, other.fmt, op)
            return float(other)
        if isinstance(other, (int, float)):
            return ops.quantize_array(
                np.asarray(float(other), dtype=np.float64), self._fmt
            )
        if isinstance(other, np.ndarray):
            return ops.quantize_array(other.astype(np.float64), self._fmt)
        return NotImplemented

    def _binary(
        self, other: Operand, op: str, swap: bool = False
    ) -> "FlexFloatArray":
        rhs = self._coerce(other, op)
        if rhs is NotImplemented:
            return NotImplemented
        record_op(self._fmt, op, int(np.broadcast(self._data, rhs).size))
        a, b = (rhs, self._data) if swap else (self._data, rhs)
        return FlexFloatArray._wrap(
            ops.binary_array(op, a, b, self._fmt), self._fmt
        )

    def __add__(self, other):
        return self._binary(other, "add")

    def __radd__(self, other):
        return self._binary(other, "add", swap=True)

    def __sub__(self, other):
        return self._binary(other, "sub")

    def __rsub__(self, other):
        return self._binary(other, "sub", swap=True)

    def __mul__(self, other):
        return self._binary(other, "mul")

    def __rmul__(self, other):
        return self._binary(other, "mul", swap=True)

    def __truediv__(self, other):
        return self._binary(other, "div")

    def __rtruediv__(self, other):
        return self._binary(other, "div", swap=True)

    def __neg__(self) -> "FlexFloatArray":
        return FlexFloatArray._wrap(-self._data, self._fmt)

    def __abs__(self) -> "FlexFloatArray":
        return FlexFloatArray._wrap(np.abs(self._data), self._fmt)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: int | None = None):
        """Tree-reduction sum with per-level sanitization.

        Emulates a vectorized accumulator: additions at each level of a
        balanced binary tree, each result rounded to the array format.
        ``n - 1`` additions per reduced lane are recorded, the same count
        a hardware loop would execute.  With ``axis``, reduces along that
        axis and returns a :class:`FlexFloatArray`; without, reduces
        everything to one :class:`FlexFloat`.
        """
        if axis is None:
            work = self._data.reshape(1, -1)
        else:
            work = np.moveaxis(self._data, axis, -1)
            lead = work.shape[:-1]
            work = work.reshape(-1, work.shape[-1])
        n = work.shape[1]
        if n == 0:
            reduced = np.zeros(work.shape[0])
        else:
            record_op(self._fmt, "add", (n - 1) * work.shape[0])
            reduced = ops.tree_sum(work, self._fmt)
        if axis is None:
            return FlexFloat(float(reduced[0]), self._fmt)
        return FlexFloatArray._wrap(
            np.ascontiguousarray(reduced.reshape(lead)), self._fmt
        )

    def dot(self, other: "FlexFloatArray") -> FlexFloat:
        """Elementwise product followed by the tree-reduction sum."""
        return (self * other).sum()

    def take(self, indices) -> "FlexFloatArray":
        """Gather elements (pure addressing: no FP operations counted)."""
        picked = self._data[np.asarray(indices)]
        return FlexFloatArray._wrap(np.ascontiguousarray(picked), self._fmt)

    def min(self) -> FlexFloat:
        record_op(self._fmt, "min", max(self.size - 1, 0))
        return FlexFloat(float(np.min(self._data)), self._fmt)

    def max(self) -> FlexFloat:
        record_op(self._fmt, "max", max(self.size - 1, 0))
        return FlexFloat(float(np.max(self._data)), self._fmt)

    # ------------------------------------------------------------------
    # Shape utilities (no arithmetic, no stats)
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "FlexFloatArray":
        return FlexFloatArray._wrap(self._data.reshape(*shape), self._fmt)

    def copy(self) -> "FlexFloatArray":
        return FlexFloatArray._wrap(self._data.copy(), self._fmt)

    def transpose(self) -> "FlexFloatArray":
        return FlexFloatArray._wrap(
            np.ascontiguousarray(self._data.T), self._fmt
        )

    @property
    def T(self) -> "FlexFloatArray":
        return self.transpose()

    def __repr__(self) -> str:
        return f"FlexFloatArray({self._fmt!r}, shape={self.shape})"
