"""Pluggable arithmetic backends (the platform's "execution engines").

The paper's platform is explicitly multi-level: the same program runs on
the FlexFloat *emulation* library while tuning and on the *native*
transprecision FPU afterwards.  This module gives the reproduction the
matching seam: every scalar and array operation, cast and reduction is
routed through a :class:`Backend`, and backends are swappable per
session (see :mod:`repro.session`) or temporarily via
:func:`repro.core.context.use_backend`.

Two backends ship:

* :class:`ReferenceBackend` -- the exact bit-integer scalar pipeline of
  :mod:`repro.core.quantize` plus its reference numpy vectorization.
  This is the semantics oracle; every other backend must match it
  bit for bit.
* :class:`FastNumpyBackend` -- the production array path.  Per-format
  quantization constants are precomputed once and cached, binary16 /
  binary32 sanitization uses the hardware's own correctly-rounding
  ``float16``/``float32`` conversions, and all other formats go through
  a short scale--``rint``--unscale kernel (both are IEEE 754
  round-to-nearest-even, so results stay bit-identical to the
  reference; the randomized cross-check in ``tests/core/test_backend``
  enforces this).  Arithmetic fuses the operation with quantize-on-write
  so each emulated array op costs two to three numpy passes instead of
  the reference's ~25.

Backends are stateless apart from caches, so one shared instance per
class is handed out by :func:`resolve_backend`.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np

from . import quantize as _reference
from .formats import FPFormat

__all__ = [
    "Backend",
    "ReferenceBackend",
    "FastNumpyBackend",
    "register_backend",
    "resolve_backend",
    "available_backends",
]


def _safe_div(a: float, b: float) -> float:
    """IEEE division on doubles: finite/0 is a signed infinity, 0/0 is NaN."""
    try:
        return a / b
    except ZeroDivisionError:
        if a == 0.0 or a != a:
            return math.nan
        return math.copysign(math.inf, a) * math.copysign(1.0, b)


def _ieee_divide(a, b) -> np.ndarray:
    with np.errstate(divide="ignore", invalid="ignore"):
        return np.divide(a, b)


#: Scalar implementations of the binary operators, on raw doubles.
SCALAR_OPS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "div": _safe_div,
}

#: Vectorized implementations of the binary operators.
ARRAY_OPS = {
    "add": np.add,
    "sub": np.subtract,
    "mul": np.multiply,
    "div": _ieee_divide,
}

#: Vectorized auxiliary (softfloat) functions.
UNARY_ARRAY_OPS = {
    "sqrt": np.sqrt,
    "exp": np.exp,
    "log": np.log,
}


class Backend(ABC):
    """One arithmetic engine: quantization, arithmetic, casts, reductions.

    Subclasses must provide the two quantizers; everything else has a
    default implementation expressed in terms of them, so a backend only
    overrides what it can genuinely accelerate.
    """

    #: Registry key; subclasses must override.
    name: str = "abstract"

    #: Trailing payload axes beyond the logical array shape (0 for
    #: concrete float64 payloads; the abstract-interpretation backend
    #: carries one trailing center/radius pair axis).  FlexFloatArray's
    #: shape plumbing consults this so logical semantics are preserved
    #: for any payload layout.
    payload_trailing_dims: int = 0

    # ------------------------------------------------------------------
    # Scalar path
    # ------------------------------------------------------------------
    @abstractmethod
    def quantize(self, x: float, fmt: FPFormat) -> float:
        """Round ``x`` to the nearest value representable in ``fmt``."""

    def binary(self, op: str, a: float, b: float, fmt: FPFormat) -> float:
        """Apply a binary operator on raw doubles and sanitize the result."""
        return self.quantize(SCALAR_OPS[op](a, b), fmt)

    def encode(self, x: float, fmt: FPFormat) -> int:
        return _reference.encode(x, fmt)

    def decode(self, pattern: int, fmt: FPFormat) -> float:
        return _reference.decode(pattern, fmt)

    # ------------------------------------------------------------------
    # Array path
    # ------------------------------------------------------------------
    @abstractmethod
    def quantize_array(self, values, fmt: FPFormat) -> np.ndarray:
        """Vectorized :meth:`quantize` over a float64 array."""

    def binary_array(self, op: str, a, b, fmt: FPFormat) -> np.ndarray:
        """Fused elementwise operator + quantize-on-write."""
        with np.errstate(invalid="ignore", over="ignore"):
            # IEEE specials (inf - inf, 0 * inf, ...) are intended
            # emulation results, not numerical accidents.
            raw = ARRAY_OPS[op](a, b)
        return self.quantize_array(raw, fmt)

    def unary_array(self, op: str, values, fmt: FPFormat) -> np.ndarray:
        """Vectorized auxiliary function (sqrt/exp/log) + sanitization."""
        with np.errstate(invalid="ignore", divide="ignore", over="ignore"):
            raw = UNARY_ARRAY_OPS[op](values)
        return self.quantize_array(raw, fmt)

    def encode_array(self, values, fmt: FPFormat) -> np.ndarray:
        return _reference.encode_array(values, fmt)

    def decode_array(self, patterns, fmt: FPFormat) -> np.ndarray:
        return _reference.decode_array(patterns, fmt)

    # ------------------------------------------------------------------
    # Structural hooks
    # ------------------------------------------------------------------
    # FlexFloat/FlexFloatArray route every payload-shape decision through
    # these, so a backend whose payloads are not plain doubles (the
    # abstract-interpretation backend in :mod:`repro.static`) can keep
    # the emulation types entirely unchanged.  The defaults reproduce the
    # concrete behaviour bit for bit.

    def cast_array(self, values, fmt: FPFormat) -> np.ndarray:
        """Re-quantize an already-sanitized payload into another format."""
        return self.quantize_array(values, fmt)

    def item_payload(self, picked, fmt: FPFormat):
        """Scalar payload for an indexing pick, or ``None`` for the
        default float/array handling (concrete payloads never override
        it)."""
        return None

    def collapse(self, value, fmt: FPFormat) -> float:
        """Force a non-float scalar payload down to a concrete double."""
        raise TypeError(
            f"{type(self).__name__} holds plain doubles; nothing to collapse"
        )

    def collapse_array(self, data: np.ndarray, fmt: FPFormat) -> np.ndarray:
        """Payload for ``to_numpy()``: a defensive copy by default."""
        return data.copy()

    def neg_array(self, data: np.ndarray, fmt: FPFormat) -> np.ndarray:
        """Elementwise negation of a sanitized payload (sign-bit flip)."""
        return -data

    def array_minmax(self, data: np.ndarray, fmt: FPFormat, kind: str):
        """Scalar payload of an elementwise min/max reduction."""
        return float(np.min(data) if kind == "min" else np.max(data))

    def sum_reduce(self, data: np.ndarray, axis, fmt: FPFormat):
        """Whole-reduction override for :meth:`FlexFloatArray.sum`.

        Return ``None`` (the default) to use the generic tree-sum path,
        or a payload already reduced along ``axis`` (``axis=None``
        meaning a scalar payload).
        """
        return None

    def tree_sum(self, work: np.ndarray, fmt: FPFormat) -> np.ndarray:
        """Balanced-tree row reduction with per-level sanitization.

        ``work`` is a 2D ``(rows, n)`` float64 array whose elements are
        already representable in ``fmt``; returns the per-row sums as a
        1D array, quantizing after every addition level (the rounding
        pattern of a vectorized/unrolled hardware accumulator).
        """
        while work.shape[1] > 1:
            if work.shape[1] % 2:
                carry = work[:, -1:]
                pairs = work[:, :-1]
            else:
                carry = None
                pairs = work
            summed = self.binary_array(
                "add", pairs[:, 0::2], pairs[:, 1::2], fmt
            )
            work = (
                summed
                if carry is None
                else np.concatenate([summed, carry], axis=1)
            )
        return work[:, 0]

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"<{type(self).__name__} {self.name!r}>"


class ReferenceBackend(Backend):
    """The exact bit-integer scalar pipeline and its reference numpy port.

    This is the seed implementation of the library, unchanged: scalars
    go through arbitrary-precision integer arithmetic on the IEEE bit
    pattern, arrays through the straight-line int64 translation of the
    same algorithm.  Slow but obviously correct -- the oracle every
    other backend is cross-checked against.
    """

    name = "reference"

    def quantize(self, x: float, fmt: FPFormat) -> float:
        return _reference.quantize(x, fmt)

    def quantize_array(self, values, fmt: FPFormat) -> np.ndarray:
        return _reference.quantize_array(values, fmt)


class _FormatParams:
    """Precomputed quantization constants for one format."""

    __slots__ = ("kind", "man_bits", "qmin", "max_value")

    def __init__(self, fmt: FPFormat) -> None:
        if fmt.exp_bits == 11 and fmt.man_bits == 52:
            self.kind = "identity"  # binary64 is the backing type
        elif fmt.exp_bits == 5 and fmt.man_bits == 10:
            self.kind = "half"  # native float16 conversion is exact RNE
        elif fmt.exp_bits == 8 and fmt.man_bits == 23:
            self.kind = "single"  # native float32 conversion is exact RNE
        else:
            self.kind = "generic"
        self.man_bits = fmt.man_bits
        #: Quantum exponent floor: below emin the spacing is pinned to
        #: the subnormal quantum 2**(emin - man_bits).
        self.qmin = fmt.emin - fmt.man_bits
        self.max_value = fmt.max_value


class FastNumpyBackend(Backend):
    """Precomputed-constant, fused-kernel array backend.

    Scalars are not a hot path (the tuner and the apps vectorize), so
    the scalar methods delegate to the exact reference pipeline; the
    array methods are rebuilt for speed:

    * per-format constants (``emin - man_bits``, ``max_value``, kernel
      kind) are computed once and cached in a ``fmt -> params`` table;
    * binary16/binary32 use the CPU's own float16/float32 converters,
      which are IEEE correctly-rounding (one rounding, RNE) and
      therefore bit-identical to the reference quantizer;
    * every other format uses a scale--``rint``--unscale kernel: with
      ``q = max(exp(x), emin) - man_bits`` the value ``x * 2**-q`` is an
      exact power-of-two scaling, ``rint`` performs the one
      round-to-nearest-even, and scaling back is exact because the
      rounded integer fits 25 bits.  Overflow beyond ``maxfinite`` is
      then mapped to infinity exactly where IEEE 754 demands
      (``>= maxfinite + ulp/2`` rounds up to ``2**(emax+1)``);
    * :meth:`binary_array` fuses the operator with quantize-on-write:
      the raw result buffer is consumed in place instead of being
      re-walked by a separate sanitization pass.
    """

    name = "fast"

    def __init__(self) -> None:
        self._params: dict[FPFormat, _FormatParams] = {}

    # ------------------------------------------------------------------
    def params_for(self, fmt: FPFormat) -> _FormatParams:
        """The cached ``fmt -> quantization constants`` table entry."""
        try:
            return self._params[fmt]
        except KeyError:
            params = self._params[fmt] = _FormatParams(fmt)
            return params

    # -- scalar: exact reference (not the hot path) --------------------
    def quantize(self, x: float, fmt: FPFormat) -> float:
        return _reference.quantize(x, fmt)

    # -- array: fast kernels -------------------------------------------
    def quantize_array(self, values, fmt: FPFormat) -> np.ndarray:
        a = np.asarray(values, dtype=np.float64)
        return self._sanitize(a, self.params_for(fmt), owned=False)

    def binary_array(self, op: str, a, b, fmt: FPFormat) -> np.ndarray:
        with np.errstate(invalid="ignore", over="ignore"):
            raw = ARRAY_OPS[op](a, b)  # fresh buffer: safe to consume
        return self._sanitize(raw, self.params_for(fmt), owned=True)

    def unary_array(self, op: str, values, fmt: FPFormat) -> np.ndarray:
        with np.errstate(invalid="ignore", divide="ignore", over="ignore"):
            raw = UNARY_ARRAY_OPS[op](values)
        return self._sanitize(raw, self.params_for(fmt), owned=True)

    # ------------------------------------------------------------------
    def _sanitize(
        self, a: np.ndarray, p: _FormatParams, owned: bool
    ) -> np.ndarray:
        """Quantize ``a`` in the fewest possible numpy passes.

        ``owned`` marks buffers this backend just produced (fused ops),
        which may be returned or clobbered without copying.
        """
        if a.ndim == 0:
            # Ufuncs collapse 0-d arrays to scalars, which breaks the
            # out= passes below; route through a one-element view.
            return self._sanitize(a.reshape(1), p, owned).reshape(())
        if p.kind == "identity":
            return a if owned else a.copy()
        if p.kind == "half":
            with np.errstate(over="ignore"):  # saturation to inf is wanted
                return a.astype(np.float16).astype(np.float64)
        if p.kind == "single":
            with np.errstate(over="ignore"):
                return a.astype(np.float32).astype(np.float64)

        # Generic kernel.  frexp gives exp(x) + 1; the quantum exponent
        # is q = max(exp(x), emin) - man_bits, clamped below emin so
        # subnormal spacing takes over.  Non-finite values ride through
        # every step unchanged (ldexp/rint are identities on them).
        _, q = np.frexp(a)
        q = q.astype(np.int64, copy=False)
        np.subtract(q, 1 + p.man_bits, out=q)
        np.maximum(q, p.qmin, out=q)
        with np.errstate(over="ignore", invalid="ignore"):
            scaled = np.ldexp(a, np.negative(q))
            np.rint(scaled, out=scaled)
            np.ldexp(scaled, q, out=scaled)
        # Round-to-nearest overflows to infinity exactly when the
        # rounded magnitude exceeds the largest finite value.
        over = np.abs(scaled) > p.max_value
        if over.any():
            scaled[over] = np.copysign(np.inf, scaled[over])
        return scaled


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: dict[str, type[Backend]] = {}
_INSTANCES: dict[str, Backend] = {}


def register_backend(cls: type[Backend]) -> type[Backend]:
    """Register a backend class under ``cls.name`` (usable as decorator)."""
    if not cls.name or cls.name == "abstract":
        raise ValueError(f"{cls.__name__} needs a non-empty 'name'")
    _REGISTRY[cls.name] = cls
    _INSTANCES.pop(cls.name, None)
    return cls


def available_backends() -> tuple[str, ...]:
    """The registered backend names, sorted."""
    return tuple(sorted(_REGISTRY))


def resolve_backend(spec: "Backend | str | None" = None) -> Backend:
    """Turn a backend name (or instance, or None) into a Backend.

    ``None`` resolves to the reference backend; strings go through the
    registry and share one instance per class.
    """
    if spec is None:
        spec = "reference"
    if isinstance(spec, Backend):
        return spec
    if isinstance(spec, str):
        try:
            cls = _REGISTRY[spec]
        except KeyError:
            known = ", ".join(available_backends())
            raise KeyError(
                f"unknown backend {spec!r}; known backends: {known}"
            ) from None
        if spec not in _INSTANCES:
            _INSTANCES[spec] = cls()
        return _INSTANCES[spec]
    raise TypeError(f"cannot resolve a backend from {spec!r}")


register_backend(ReferenceBackend)
register_backend(FastNumpyBackend)
