"""Interchange with native numpy dtypes and packed storage buffers.

Bridges the emulation library with the outside world:

* :func:`to_float16` / :func:`from_float16` -- binary16 arrays as
  ``numpy.float16`` (bit-exact both ways);
* :func:`to_bfloat16_bits` / :func:`from_bfloat16_bits` -- binary16alt
  arrays as uint16 payloads (binary16alt shares bfloat16's layout: the
  top half of a binary32 word);
* :func:`pack` / :func:`unpack` -- any format to a contiguous byte
  buffer of its packed bit patterns, which is what the transprecision
  platform actually stores in its data memory.  ``storage_bytes``
  reports the footprint the paper's memory-traffic arguments rely on.
"""

from __future__ import annotations

import numpy as np

from .array import FlexFloatArray
from .formats import BINARY16, BINARY16ALT, FPFormat
from .ops import decode_array, encode_array

__all__ = [
    "to_float16",
    "from_float16",
    "to_bfloat16_bits",
    "from_bfloat16_bits",
    "pack",
    "unpack",
    "storage_bytes",
]


def to_float16(array: FlexFloatArray) -> np.ndarray:
    """A binary16 FlexFloatArray as a native ``numpy.float16`` array."""
    if array.fmt != BINARY16:
        raise ValueError(f"expected a binary16 array, got {array.fmt}")
    return array.to_numpy().astype(np.float16)


def from_float16(values: np.ndarray) -> FlexFloatArray:
    """Wrap a ``numpy.float16`` array as a binary16 FlexFloatArray."""
    return FlexFloatArray(np.asarray(values, dtype=np.float16)
                          .astype(np.float64), BINARY16)


def to_bfloat16_bits(array: FlexFloatArray) -> np.ndarray:
    """A binary16alt array as uint16 bfloat16 bit patterns.

    binary16alt has bfloat16's layout, i.e. the upper 16 bits of the
    corresponding binary32 encoding.
    """
    if array.fmt != BINARY16ALT:
        raise ValueError(f"expected a binary16alt array, got {array.fmt}")
    as32 = array.to_numpy().astype(np.float32)
    return (as32.view(np.uint32) >> np.uint32(16)).astype(np.uint16)


def from_bfloat16_bits(bits: np.ndarray) -> FlexFloatArray:
    """Wrap uint16 bfloat16 bit patterns as a binary16alt array."""
    widened = np.asarray(bits, dtype=np.uint16).astype(np.uint32) << 16
    return FlexFloatArray(
        widened.view(np.float32).astype(np.float64), BINARY16ALT
    )


def pack(values: np.ndarray, fmt: FPFormat) -> bytes:
    """Quantize and pack values into the format's byte representation.

    Each element occupies ``fmt.storage_bytes`` bytes, little-endian;
    this is the data-memory image the platform's loads and stores move.
    """
    patterns = encode_array(np.asarray(values, dtype=np.float64), fmt)
    width = fmt.storage_bytes
    out = bytearray(len(patterns) * width)
    for i, pattern in enumerate(patterns):
        out[i * width : (i + 1) * width] = int(pattern).to_bytes(
            width, "little"
        )
    return bytes(out)


def unpack(buffer: bytes, fmt: FPFormat) -> np.ndarray:
    """Inverse of :func:`pack`: bytes back to float64 values."""
    width = fmt.storage_bytes
    if len(buffer) % width:
        raise ValueError(
            f"buffer length {len(buffer)} is not a multiple of {width}"
        )
    count = len(buffer) // width
    patterns = np.empty(count, dtype=np.uint64)
    for i in range(count):
        patterns[i] = int.from_bytes(
            buffer[i * width : (i + 1) * width], "little"
        )
    return decode_array(patterns, fmt)


def storage_bytes(count: int, fmt: FPFormat) -> int:
    """Memory footprint of ``count`` elements stored in ``fmt``."""
    return count * fmt.storage_bytes
