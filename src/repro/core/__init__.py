"""FlexFloat core: formats, bit-exact quantization, scalar/array emulation.

The public surface of the emulation library:

>>> from repro.core import FlexFloat, BINARY16ALT
>>> x = FlexFloat(3.14159, BINARY16ALT)
>>> float(x)
3.140625

Arithmetic executes on a pluggable :class:`Backend` (see
:mod:`repro.core.backend`): the exact ``reference`` engine by default, or
the ``fast`` precomputed-constant numpy engine -- selected per session
(:class:`repro.session.Session`) or temporarily via :func:`use_backend`.
The ``quantize``/``encode``/``decode`` functions exported here dispatch
to the active backend; the raw reference implementations stay available
in :mod:`repro.core.quantize`.
"""

from .array import FlexFloatArray
from .backend import (
    Backend,
    FastNumpyBackend,
    ReferenceBackend,
    available_backends,
    register_backend,
    resolve_backend,
)
from .context import ExecutionContext, use_backend
from .formats import (
    BINARY8,
    BINARY16,
    BINARY16ALT,
    BINARY32,
    BINARY64,
    STANDARD_FORMATS,
    FPFormat,
    format_by_name,
)
from .ops import (
    active_backend,
    decode,
    encode,
    is_exact,
    quantize,
    quantize_array,
)
from .stats import (
    Stats,
    collect,
    in_vectorizable_region,
    record_cast,
    record_op,
    vectorizable,
)
from .rounding import ROUNDING_MODES, quantize_mode
from .value import FlexFloat, FormatMismatchError
from . import interchange, mathfn

__all__ = [
    "FPFormat",
    "BINARY8",
    "BINARY16",
    "BINARY16ALT",
    "BINARY32",
    "BINARY64",
    "STANDARD_FORMATS",
    "format_by_name",
    "quantize",
    "quantize_array",
    "encode",
    "decode",
    "is_exact",
    "FlexFloat",
    "FlexFloatArray",
    "FormatMismatchError",
    "Stats",
    "collect",
    "vectorizable",
    "in_vectorizable_region",
    "record_op",
    "record_cast",
    "mathfn",
    "interchange",
    "ROUNDING_MODES",
    "quantize_mode",
    "Backend",
    "ReferenceBackend",
    "FastNumpyBackend",
    "register_backend",
    "resolve_backend",
    "available_backends",
    "active_backend",
    "use_backend",
    "ExecutionContext",
]
