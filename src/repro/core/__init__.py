"""FlexFloat core: formats, bit-exact quantization, scalar/array emulation.

The public surface of the emulation library:

>>> from repro.core import FlexFloat, BINARY16ALT
>>> x = FlexFloat(3.14159, BINARY16ALT)
>>> float(x)
3.140625
"""

from .array import FlexFloatArray
from .formats import (
    BINARY8,
    BINARY16,
    BINARY16ALT,
    BINARY32,
    BINARY64,
    STANDARD_FORMATS,
    FPFormat,
    format_by_name,
)
from .quantize import decode, encode, is_exact, quantize, quantize_array
from .stats import (
    Stats,
    collect,
    in_vectorizable_region,
    record_cast,
    record_op,
    vectorizable,
)
from .rounding import ROUNDING_MODES, quantize_mode
from .value import FlexFloat, FormatMismatchError
from . import interchange, mathfn

__all__ = [
    "FPFormat",
    "BINARY8",
    "BINARY16",
    "BINARY16ALT",
    "BINARY32",
    "BINARY64",
    "STANDARD_FORMATS",
    "format_by_name",
    "quantize",
    "quantize_array",
    "encode",
    "decode",
    "is_exact",
    "FlexFloat",
    "FlexFloatArray",
    "FormatMismatchError",
    "Stats",
    "collect",
    "vectorizable",
    "in_vectorizable_region",
    "record_op",
    "record_cast",
    "mathfn",
    "interchange",
    "ROUNDING_MODES",
    "quantize_mode",
]
