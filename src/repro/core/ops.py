"""The op-dispatch layer: one door between emulation types and backends.

Every scalar and array operation, cast, and reduction performed by
:class:`repro.core.FlexFloat`, :class:`repro.core.FlexFloatArray` and
:mod:`repro.core.mathfn` goes through these functions, which route to the
:class:`~repro.core.backend.Backend` of the current execution context
(see :mod:`repro.core.context`).  Swapping the backend -- per session or
via :func:`repro.core.context.use_backend` -- therefore retargets the
whole platform at once, with no call-site changes.

The module also provides the public ``quantize``/``encode``/``decode``
functions re-exported by :mod:`repro.core`; under the default session
they are bit-identical to the reference implementations in
:mod:`repro.core.quantize` (and every backend is *required* to stay
bit-identical, so in practice they always are).
"""

from __future__ import annotations

import numpy as np

from .backend import Backend
from .context import current_context
from .formats import FPFormat

__all__ = [
    "active_backend",
    "payload_offset",
    "quantize",
    "quantize_array",
    "encode",
    "decode",
    "encode_array",
    "decode_array",
    "is_exact",
    "binary_scalar",
    "binary_array",
    "unary_array",
    "tree_sum",
    "cast_array",
    "item_payload",
    "collapse",
    "collapse_array",
    "neg_array",
    "array_minmax",
    "sum_reduce",
]


def active_backend() -> Backend:
    """The backend arithmetic currently dispatches to."""
    return current_context().backend


def payload_offset() -> int:
    """Trailing payload axes beyond the logical shape (0 when concrete)."""
    return current_context().backend.payload_trailing_dims


# ----------------------------------------------------------------------
# Quantization and bit-pattern casts
# ----------------------------------------------------------------------
def quantize(x: float, fmt: FPFormat) -> float:
    """Round ``x`` to the nearest value representable in ``fmt``."""
    if type(x) is not float and not getattr(x, "_abstract_payload_", False):
        x = float(x)
    return current_context().backend.quantize(x, fmt)


def quantize_array(values, fmt: FPFormat) -> np.ndarray:
    """Vectorized :func:`quantize` over a float64 numpy array."""
    return current_context().backend.quantize_array(values, fmt)


def encode(x: float, fmt: FPFormat) -> int:
    """Pack a value into the ``fmt.bits``-wide integer bit pattern."""
    return current_context().backend.encode(x, fmt)


def decode(pattern: int, fmt: FPFormat) -> float:
    """Unpack a ``fmt.bits``-wide integer bit pattern into a double."""
    return current_context().backend.decode(pattern, fmt)


def encode_array(values, fmt: FPFormat) -> np.ndarray:
    """Vectorized :func:`encode`; returns a uint64 array of patterns."""
    return current_context().backend.encode_array(values, fmt)


def decode_array(patterns, fmt: FPFormat) -> np.ndarray:
    """Vectorized :func:`decode`; returns a float64 array."""
    return current_context().backend.decode_array(patterns, fmt)


def is_exact(x: float, fmt: FPFormat) -> bool:
    """True when ``x`` is already exactly representable in ``fmt``."""
    return quantize(x, fmt) == x or x != x


# ----------------------------------------------------------------------
# Arithmetic and reductions
# ----------------------------------------------------------------------
def binary_scalar(op: str, a: float, b: float, fmt: FPFormat) -> float:
    """One scalar operation on raw doubles, sanitized to ``fmt``."""
    return current_context().backend.binary(op, a, b, fmt)


def binary_array(op: str, a, b, fmt: FPFormat) -> np.ndarray:
    """One elementwise array operation, sanitized to ``fmt``."""
    return current_context().backend.binary_array(op, a, b, fmt)


def unary_array(op: str, values, fmt: FPFormat) -> np.ndarray:
    """One auxiliary (sqrt/exp/log) array function, sanitized."""
    return current_context().backend.unary_array(op, values, fmt)


def tree_sum(work: np.ndarray, fmt: FPFormat) -> np.ndarray:
    """Per-row balanced-tree reduction with per-level sanitization."""
    return current_context().backend.tree_sum(work, fmt)


# ----------------------------------------------------------------------
# Structural hooks (payload-shape decisions; see Backend docstrings)
# ----------------------------------------------------------------------
def cast_array(values, fmt: FPFormat) -> np.ndarray:
    """Re-quantize an already-sanitized array payload into ``fmt``."""
    return current_context().backend.cast_array(values, fmt)


def item_payload(picked, fmt: FPFormat):
    """Backend-specific scalar payload for an indexing pick, or None."""
    return current_context().backend.item_payload(picked, fmt)


def collapse(value, fmt: FPFormat) -> float:
    """Force a non-float scalar payload down to a concrete double."""
    return current_context().backend.collapse(value, fmt)


def collapse_array(data, fmt: FPFormat) -> np.ndarray:
    """Payload behind ``FlexFloatArray.to_numpy()``."""
    return current_context().backend.collapse_array(data, fmt)


def neg_array(data, fmt: FPFormat) -> np.ndarray:
    """Elementwise negation of a sanitized payload."""
    return current_context().backend.neg_array(data, fmt)


def array_minmax(data, fmt: FPFormat, kind: str):
    """Scalar payload of an elementwise min/max reduction."""
    return current_context().backend.array_minmax(data, fmt, kind)


def sum_reduce(data, axis, fmt: FPFormat):
    """Whole-reduction override for ``FlexFloatArray.sum`` (or None)."""
    return current_context().backend.sum_reduce(data, axis, fmt)
