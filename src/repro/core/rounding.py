"""Directed rounding modes for the quantizer (extension).

The paper's unit rounds to nearest-even only; its successor (the FPnew
line of transprecision FPUs) implements the full IEEE 754 set.  This
module extends :func:`repro.core.quantize.quantize` with the directed
modes so format exploration can also study rounding-mode sensitivity:

* ``nearest_even`` -- IEEE round-to-nearest, ties to even (the default
  everywhere else in the library);
* ``toward_zero`` -- truncation (RTZ);
* ``toward_positive`` / ``toward_negative`` -- directed modes (RTP/RTN).
"""

from __future__ import annotations

import math

from .formats import FPFormat
from .quantize import _decompose, quantize

__all__ = ["ROUNDING_MODES", "quantize_mode"]

ROUNDING_MODES = (
    "nearest_even",
    "toward_zero",
    "toward_positive",
    "toward_negative",
)


def _directed_shift(value: int, shift: int, round_up: bool) -> int:
    """Shift right, rounding down (truncate) or up (away) as requested."""
    if shift <= 0:
        return value << (-shift)
    rem = value & ((1 << shift) - 1)
    out = value >> shift
    if round_up and rem:
        out += 1
    return out


def quantize_mode(x: float, fmt: FPFormat, mode: str = "nearest_even"
                  ) -> float:
    """Quantize with an explicit rounding mode.

    ``nearest_even`` delegates to the standard quantizer; the directed
    modes share its exact integer pipeline but replace the rounding
    decision.  Overflow behaviour follows IEEE 754: RTZ and the
    away-facing directed mode clamp to the largest finite value instead
    of producing infinity when the direction points back toward zero.
    """
    if mode == "nearest_even":
        return quantize(x, fmt)
    if mode not in ROUNDING_MODES:
        raise ValueError(
            f"unknown rounding mode {mode!r}; choose from {ROUNDING_MODES}"
        )
    x = float(x)
    if x != x or math.isinf(x) or x == 0.0:
        return x

    sign, ex, sig53 = _decompose(x)
    # Direction of rounding for the magnitude.
    if mode == "toward_zero":
        up = False
    elif mode == "toward_positive":
        up = sign == 0
    else:  # toward_negative
        up = sign == 1

    q = max(ex, fmt.emin) - fmt.man_bits
    shift = q - ex + 52
    rounded = _directed_shift(sig53, shift, up)
    if rounded == 0:
        return -0.0 if sign else 0.0
    if rounded.bit_length() - 1 + q > fmt.emax:
        if up:
            return -math.inf if sign else math.inf
        magnitude = fmt.max_value
    else:
        magnitude = math.ldexp(rounded, q)
    return -magnitude if sign else magnitude
