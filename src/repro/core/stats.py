"""Operation and cast statistics (paper §III-A, step 4 of Fig. 2).

FlexFloat collects, per format, how many arithmetic operations and how many
casts a program performs, separating *scalar* from *vectorizable* work.
The paper tags vectorizable program sections manually in the source; here
the :func:`vectorizable` context manager plays that role -- every operation
recorded inside it is flagged as vector work.

Collection is opt-in: operations are only counted while at least one
:class:`Stats` object is installed via :func:`collect`, so the emulation
fast path pays a single ``if`` when statistics are off.

Collection state is *session-scoped*: the active collectors and the
vectorizable-region depth live on the current
:class:`repro.core.context.ExecutionContext` (owned by a
:class:`repro.session.Session`), not in module globals.  The functions
here are thin compatibility shims over that context, so existing
``collect()``/``record_op()`` call sites keep working unchanged under
the default session.
"""

from __future__ import annotations

from collections import Counter
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from .context import current_context, install_collector, vector_region
from .formats import FPFormat

__all__ = [
    "Stats",
    "OpKey",
    "CastKey",
    "collect",
    "vectorizable",
    "in_vectorizable_region",
    "record_op",
    "record_cast",
    "ARITHMETIC_OPS",
]

#: Operation names treated as FP arithmetic (the transprecision FPU's
#: computational slices; ``fma`` is the extension op of the successor
#: units).  Other names (sqrt, div, exp, ...) are tracked too but belong
#: to the softfloat/auxiliary category in the analysis.
ARITHMETIC_OPS = frozenset({"add", "sub", "mul", "fma"})


@dataclass(frozen=True)
class OpKey:
    """Key for one operation counter: format name, op name, vector flag."""

    fmt: str
    op: str
    vector: bool


@dataclass(frozen=True)
class CastKey:
    """Key for one cast counter: source/destination names, vector flag."""

    src: str
    dst: str
    vector: bool


@dataclass
class Stats:
    """Aggregated operation and cast counts for a program run."""

    ops: Counter = field(default_factory=Counter)
    casts: Counter = field(default_factory=Counter)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def add_op(self, fmt: FPFormat, op: str, count: int, vector: bool) -> None:
        self.ops[OpKey(fmt.name or repr(fmt), op, vector)] += count

    def add_cast(
        self, src: FPFormat, dst: FPFormat, count: int, vector: bool
    ) -> None:
        self.casts[
            CastKey(src.name or repr(src), dst.name or repr(dst), vector)
        ] += count

    # ------------------------------------------------------------------
    # Queries used by the analysis drivers
    # ------------------------------------------------------------------
    def total_ops(self) -> int:
        """All recorded operations, any format, scalar and vector."""
        return sum(self.ops.values())

    def total_arith_ops(self) -> int:
        """Operations handled by the FPU computational slices."""
        return sum(
            n for key, n in self.ops.items() if key.op in ARITHMETIC_OPS
        )

    def total_casts(self) -> int:
        return sum(self.casts.values())

    def ops_by_format(self, vector: bool | None = None) -> dict[str, int]:
        """Arithmetic op counts keyed by format name.

        ``vector`` filters to scalar (False) / vector (True) work;
        None aggregates both.
        """
        out: Counter = Counter()
        for key, n in self.ops.items():
            if key.op not in ARITHMETIC_OPS:
                continue
            if vector is not None and key.vector is not vector:
                continue
            out[key.fmt] += n
        return dict(out)

    def ops_named(self, op: str) -> int:
        return sum(n for key, n in self.ops.items() if key.op == op)

    def casts_by_pair(self) -> dict[tuple[str, str], int]:
        out: Counter = Counter()
        for key, n in self.casts.items():
            out[(key.src, key.dst)] += n
        return dict(out)

    def vector_fraction(self) -> float:
        """Fraction of arithmetic operations inside vectorizable regions."""
        total = self.total_arith_ops()
        if total == 0:
            return 0.0
        vec = sum(
            n
            for key, n in self.ops.items()
            if key.op in ARITHMETIC_OPS and key.vector
        )
        return vec / total

    def merged_with(self, other: "Stats") -> "Stats":
        merged = Stats()
        merged.ops = self.ops + other.ops
        merged.casts = self.casts + other.casts
        return merged

    def clear(self) -> None:
        self.ops.clear()
        self.casts.clear()

    # ------------------------------------------------------------------
    # Serialization (result store / experiment runner)
    # ------------------------------------------------------------------
    def to_payload(self) -> dict:
        """JSON-able dict; :meth:`from_payload` restores an equal object.

        Counter keys are dataclasses; they flatten to ``[field..., count]``
        rows (sorted for stable files).
        """
        return {
            "ops": [
                [key.fmt, key.op, key.vector, n]
                for key, n in sorted(
                    self.ops.items(),
                    key=lambda item: (
                        item[0].fmt, item[0].op, item[0].vector,
                    ),
                )
            ],
            "casts": [
                [key.src, key.dst, key.vector, n]
                for key, n in sorted(
                    self.casts.items(),
                    key=lambda item: (
                        item[0].src, item[0].dst, item[0].vector,
                    ),
                )
            ],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "Stats":
        stats = cls()
        stats.ops = Counter(
            {
                OpKey(fmt, op, bool(vector)): int(n)
                for fmt, op, vector, n in payload["ops"]
            }
        )
        stats.casts = Counter(
            {
                CastKey(src, dst, bool(vector)): int(n)
                for src, dst, vector, n in payload["casts"]
            }
        )
        return stats


# ----------------------------------------------------------------------
# Collection shims over the current execution context
# ----------------------------------------------------------------------
@contextmanager
def collect(stats: Stats | None = None) -> Iterator[Stats]:
    """Install a collector; ops performed inside the block are recorded.

    Collectors nest: every active collector receives every event, so an
    outer whole-program collector and an inner per-kernel collector can
    run simultaneously.  The collector is installed on the execution
    context that is current at entry (i.e. the active session's).
    """
    if stats is None:
        stats = Stats()
    with install_collector(current_context(), stats):
        yield stats


@contextmanager
def vectorizable() -> Iterator[None]:
    """Tag the enclosed operations as belonging to a vectorizable region."""
    with vector_region(current_context()):
        yield


def in_vectorizable_region() -> bool:
    return current_context().vector_depth > 0


def record_op(fmt: FPFormat, op: str, count: int = 1) -> None:
    """Record ``count`` operations of ``op`` in ``fmt`` (module-level hook)."""
    ctx = current_context()
    if not ctx.collectors:
        return
    vector = ctx.vector_depth > 0
    for stats in ctx.collectors:
        stats.add_op(fmt, op, count, vector)


def record_cast(src: FPFormat, dst: FPFormat, count: int = 1) -> None:
    """Record ``count`` casts from ``src`` to ``dst``."""
    ctx = current_context()
    if not ctx.collectors:
        return
    vector = ctx.vector_depth > 0
    for stats in ctx.collectors:
        stats.add_cast(src, dst, count, vector)
