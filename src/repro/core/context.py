"""Execution-context state shared by the dispatch and statistics layers.

An :class:`ExecutionContext` is the low-level bundle of mutable state one
session owns: the active arithmetic :class:`~repro.core.backend.Backend`,
the installed statistics collectors, and the vectorizable-region depth.
:mod:`repro.core.ops` dispatches arithmetic through the *current*
context's backend; :mod:`repro.core.stats` records into the *current*
context's collectors.

A *per-thread* stack holds the active contexts.  The bottom entry of
every thread's stack is the shared process-wide default (what the compat
shims and the default session use, matching the seed library's global
collector semantics across threads); :class:`repro.session.Session`
pushes its own context on activation, so sessions get fully isolated
statistics and backend selection -- including from sessions activated
concurrently in other threads.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator

from .backend import Backend, resolve_backend

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .stats import Stats

__all__ = [
    "ExecutionContext",
    "current_context",
    "default_context",
    "push_context",
    "pop_context",
    "activate_context",
    "install_collector",
    "vector_region",
    "use_backend",
]


class ExecutionContext:
    """Backend + statistics state for one logical execution scope."""

    __slots__ = ("backend", "collectors", "vector_depth")

    def __init__(self, backend: "Backend | str | None" = None) -> None:
        self.backend: Backend = resolve_backend(backend)
        self.collectors: list["Stats"] = []
        self.vector_depth: int = 0

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"<ExecutionContext backend={self.backend.name!r} "
            f"collectors={len(self.collectors)}>"
        )


#: The single process-wide default context, shared by every thread's
#: stack bottom (and never popped).
_DEFAULT_CONTEXT = ExecutionContext()


class _ContextStack(threading.local):
    """Per-thread stack of active contexts, bottomed on the default."""

    def __init__(self) -> None:
        self.stack: list[ExecutionContext] = [_DEFAULT_CONTEXT]


_local = _ContextStack()


def current_context() -> ExecutionContext:
    """The context arithmetic and statistics currently route through."""
    return _local.stack[-1]


def default_context() -> ExecutionContext:
    """The process-wide default context (bottom of every stack)."""
    return _DEFAULT_CONTEXT


def push_context(ctx: ExecutionContext) -> None:
    """Make ``ctx`` the current context until popped (this thread only)."""
    _local.stack.append(ctx)


def pop_context(ctx: ExecutionContext) -> None:
    """Remove the topmost occurrence of ``ctx`` (never the default)."""
    stack = _local.stack
    for i in range(len(stack) - 1, 0, -1):
        if stack[i] is ctx:
            del stack[i]
            return


@contextmanager
def install_collector(ctx: ExecutionContext, stats) -> Iterator[None]:
    """Install a collector on ``ctx`` for the duration of the block.

    Removal is by identity, not equality: Stats is a dataclass, and two
    collectors with equal contents would confuse ``list.remove()``.
    """
    ctx.collectors.append(stats)
    try:
        yield
    finally:
        for i in range(len(ctx.collectors) - 1, -1, -1):
            if ctx.collectors[i] is stats:
                del ctx.collectors[i]
                break


@contextmanager
def vector_region(ctx: ExecutionContext) -> Iterator[None]:
    """Mark a vectorizable region on ``ctx`` for the duration of the block."""
    ctx.vector_depth += 1
    try:
        yield
    finally:
        ctx.vector_depth -= 1


@contextmanager
def activate_context(ctx: ExecutionContext) -> Iterator[ExecutionContext]:
    """Temporarily make ``ctx`` the current context."""
    push_context(ctx)
    try:
        yield ctx
    finally:
        pop_context(ctx)


@contextmanager
def use_backend(
    backend: "Backend | str", ctx: ExecutionContext | None = None
) -> Iterator[Backend]:
    """Temporarily swap a context's backend (the current one by default).

    Statistics collection keeps flowing to the same collectors -- only
    the arithmetic engine changes, which is the right granularity for
    "run this block on the fast backend" experiments.
    """
    if ctx is None:
        ctx = current_context()
    previous, ctx.backend = ctx.backend, resolve_backend(backend)
    try:
        yield ctx.backend
    finally:
        ctx.backend = previous
