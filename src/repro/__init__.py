"""repro: reproduction of "A Transprecision Floating-Point Platform for
Ultra-Low Power Computing" (Tagliavini et al., DATE 2018).

Subpackages
-----------
``repro.core``
    FlexFloat emulation: formats, bit-exact quantization, scalar and array
    types, operation/cast statistics, and the pluggable arithmetic
    backends (exact ``reference`` oracle, fused ``fast`` numpy kernels)
    behind the :mod:`repro.core.ops` dispatch layer.
``repro.session``
    The :class:`Session` facade: one object owning the backend, the
    statistics scope, the format environment, the tuning cache and the
    virtual platform.  Construct one and pass it down (flow, analysis
    drivers, CLI ``--backend``), or use it as a context manager:

    >>> from repro import Session
    >>> with Session(backend="fast") as s, s.collect() as stats:
    ...     pass  # FlexFloat math here runs on the fast backend
``repro.tuning``
    Precision tuning: SQNR metric, DistributedSearch reimplementation,
    precision-to-format mapping (type systems V1/V2), the FlexFloat
    wrapper.
``repro.hardware``
    Transprecision FPU model (slices, SIMD, latency, energy) and a
    PULPino-like virtual platform (mini-ISA, in-order pipeline, memory).
``repro.cluster``
    Multi-core cluster simulator: per-core pipeline replay against
    shared FPU instances (round-robin arbitration, contention stalls,
    strong-scaling speedup/efficiency).
``repro.apps``
    The six evaluation kernels (JACOBI, KNN, PCA, DWT, SVM, CONV) in both
    numeric (FlexFloat) and kernel (ISA program) form.
``repro.flow``
    The five-step transprecision programming flow of Fig. 2.
``repro.analysis``
    Drivers regenerating Table I and Figures 4-7 plus the motivation
    experiment and the headline-claims summary.
"""

__version__ = "1.1.0"

from . import core
from .session import Session, get_session, use_session

__all__ = [
    "core",
    "Session",
    "get_session",
    "use_session",
    "__version__",
]
