"""Where do the energy savings come from?  A CONV case study.

Separates the three effects the paper stacks up (§V-C/D): narrower
formats (cheaper FPU slices), sub-word vectorization (fewer
instructions), and packed memory accesses (fewer TCDM reads).

Run with::

    python examples/vectorized_energy.py
"""

from repro import Session
from repro.apps import ConvApp
from repro.core import BINARY8, BINARY16ALT, BINARY32


def report(label, run, baseline=None):
    line = (f"  {label:34s} cycles {run.cycles:7d}  "
            f"mem {run.memory_accesses:5d}  "
            f"energy {run.energy_pj / 1e3:7.1f} nJ")
    if baseline is not None:
        line += f"  ({run.energy_pj / baseline.energy_pj:.2f}x)"
    print(line)


def main() -> None:
    app = ConvApp("small")
    platform = Session().platform

    all32 = app.baseline_binding()
    all16 = {v.name: BINARY16ALT for v in app.variables()}
    all8 = {v.name: BINARY8 for v in app.variables()}

    print("CONV 5x5: stacking the transprecision effects\n")
    base = platform.run(app.build_program(all32, 0, vectorize=False))
    report("binary32 baseline", base)

    scalar16 = platform.run(app.build_program(all16, 0, vectorize=False))
    report("binary16alt, scalar only", scalar16, base)

    vector16 = platform.run(app.build_program(all16, 0, vectorize=True))
    report("binary16alt + 2-lane SIMD", vector16, base)

    scalar8 = platform.run(app.build_program(all8, 0, vectorize=False))
    report("binary8, scalar only", scalar8, base)

    vector8 = platform.run(app.build_program(all8, 0, vectorize=True))
    report("binary8 + 4-lane SIMD", vector8, base)

    print("\nBreakdown of the final configuration "
          "(FP / memory / core):")
    for label, run in [("binary32", base), ("binary8+SIMD", vector8)]:
        e = run.energy
        print(f"  {label:14s} fp {e.fp_pj / 1e3:6.1f}  "
              f"mem {e.mem_pj / 1e3:6.1f}  other {e.other_pj / 1e3:6.1f} nJ")

    v = vector8.memory
    print(f"\nVector accesses in the binary8 kernel: "
          f"{v.vector_accesses}/{v.total} "
          f"({v.vector_accesses / v.total:.0%}); a packed load moves four "
          f"operands through one TCDM port access.")


if __name__ == "__main__":
    main()
