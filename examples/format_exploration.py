"""Explore the precision/range trade-off for your own data.

Uses the range-analysis helper to answer the question behind the
paper's Fig. 1: given the values a variable actually takes and the
precision it needs, which storage format should it get?

Run with::

    python examples/format_exploration.py
"""

import numpy as np

from repro.core import BINARY8, BINARY16, BINARY16ALT, BINARY32, quantize_array
from repro.tuning import analyze_range, fitting_formats, sqnr_db
from repro.hardware import disassemble, KernelBuilder


def describe(name: str, values: np.ndarray) -> None:
    report = analyze_range(values)
    fits = fitting_formats(values)
    print(f"{name}:")
    print(f"  binades 2^{report.min_exponent} .. 2^{report.max_exponent} "
          f"({report.dynamic_range_db:.0f} dB) -> needs "
          f"{report.exponent_bits} exponent bits")
    print(f"  fitting formats: {', '.join(f.name for f in fits)}")
    for fmt in (BINARY8, BINARY16ALT, BINARY16, BINARY32):
        quantized = quantize_array(values, fmt)
        quality = sqnr_db(values, quantized)
        marker = "saturates!" if not np.all(np.isfinite(quantized)) else ""
        print(f"    {fmt.name:12s} SQNR {quality:6.1f} dB  {marker}")
    print()


def main() -> None:
    rng = np.random.default_rng(0)

    print("== Which format fits which data? ==\n")
    describe("sensor samples in [0, 1]", rng.uniform(0.0, 1.0, 512))
    describe("audio-like signal (+-2)", np.sin(np.linspace(0, 40, 512)) * 2)
    describe("energies around 1e6", rng.uniform(0.5e6, 2e6, 512))
    describe("mixed magnitudes 1e-4..1e4",
             10.0 ** rng.uniform(-4, 4, 512))

    print("== Peeking at the generated kernel code ==\n")
    b = KernelBuilder("axpy")
    x = b.alloc("x", [1.0, 2.0, 3.0, 4.0], BINARY8)
    y = b.alloc("y", [0.5] * 4, BINARY8)
    out = b.zeros("out", 4, BINARY8)
    a = b.vconst([2.0] * 4, BINARY8)
    vx = b.load(x, 0, lanes=4)
    vy = b.load(y, 0, lanes=4)
    prod = b.fp("mul", BINARY8, a, vx, lanes=4)
    total = b.fp("add", BINARY8, prod, vy, lanes=4)
    b.store(out, 0, total, lanes=4)
    print(disassemble(b.program()))
    print(f"\nresult: {b.program().output('out')}")


if __name__ == "__main__":
    main()
