"""Precision-tune the KNN kernel end to end (paper Fig. 2 flow).

Walks all five steps of the transprecision programming flow on the KNN
application through the pluggable tuning-strategy API, prints what the
paper's Figs. 4-7 would show for it, then compares the registered
tuning strategies on the same problem.

Run with::

    python examples/tune_knn.py [precision] [strategy]   # 1e-1, greedy
"""

import sys

from repro import Session
from repro.apps import KnnApp
from repro.tuning import V2, precision_to_sqnr_db, strategy_names


def main() -> None:
    precision = float(sys.argv[1]) if len(sys.argv) > 1 else 1e-1
    strategy = sys.argv[2] if len(sys.argv) > 2 else "greedy"
    app = KnnApp("small")
    target = precision_to_sqnr_db(precision)
    print(f"Tuning {app.name} for precision {precision:g} "
          f"(SQNR >= {target:.0f} dB), type system V2, "
          f"strategy {strategy}\n")

    # One session owns the backend, the statistics scope, the platform
    # and the default tuning strategy; the whole five-step flow executes
    # under it.  The fast backend is bit-identical to the reference, so
    # tuning results do not change -- only the wall-clock does.
    session = Session(backend="fast", default_strategy=strategy)

    # Steps 1-3: tune and map to storage formats.  tune_report() wraps
    # the TuningResult with the solver's evaluation/wall-time accounting.
    flow = session.flow(app, V2, precision, cache_dir=None)
    report = flow.tune_report()
    tuning = report.result
    binding = tuning.storage_binding(V2)
    print("Step 2-3: tuned precision bits and storage formats")
    for spec in app.variables():
        bits = tuning.precision[spec.name]
        print(f"  {spec.name:8s} {spec.size:5d} locations  "
              f"{bits:2d} bits -> {binding[spec.name].name}")
    print(f"  ({report.evaluations} program evaluations in "
          f"{report.wall_time_s:.2f}s, achieved "
          + ", ".join(f"{v:.1f} dB" for v in tuning.achieved_db.values())
          + ")\n")

    # Step 4: statistics from the emulated run (session-scoped).
    with session, session.collect() as stats:
        app.run_numeric(binding, 0)
    print("Step 4: FP operation statistics (Fig. 5 view)")
    for fmt, count in sorted(stats.ops_by_format().items()):
        print(f"  {fmt:12s} {count:7d} ops")
    print(f"  vectorizable: {stats.vector_fraction():.0%}, "
          f"casts: {stats.total_casts()}\n")

    # Step 5: native execution on the virtual platform.
    result = flow.run()
    base = result.baseline_report
    tuned = result.tuned_report
    print("Step 5: virtual-platform replay (Figs. 6-7 view)")
    print(f"  cycles          {base.cycles:8d} -> {tuned.cycles:8d}  "
          f"({result.cycles_ratio:.2f}x)")
    print(f"  memory accesses {base.memory_accesses:8d} -> "
          f"{tuned.memory_accesses:8d}  ({result.memory_ratio:.2f}x)")
    print(f"  energy          {base.energy_pj / 1e3:8.1f} -> "
          f"{tuned.energy_pj / 1e3:8.1f} nJ ({result.energy_ratio:.2f}x)\n")

    # Strategy comparison: every registered solver against the same
    # problem.  Same SQNR target, very different evaluation budgets --
    # bisection typically needs 40-70% fewer program runs than greedy,
    # annealing trades determinism-friendly randomness for robustness
    # on non-monotone programs, cast_aware spends extra evaluations to
    # merge formats and delete conversions.
    print("Strategy comparison (same problem, every registered solver)")
    print(f"  {'strategy':12s} {'evals':>6s} {'bits':>5s} {'met':>4s}")
    for name in strategy_names():
        if name == strategy:
            comparison = report  # already solved in steps 2-3 above
        else:
            comparison = session.flow(
                KnnApp("small"), V2, precision,
                cache_dir=None, strategy=name,
            ).tune_report()
        met = all(v >= target
                  for v in comparison.result.achieved_db.values())
        bits = sum(comparison.result.precision.values())
        print(f"  {name:12s} {comparison.evaluations:6d} {bits:5d} "
              f"{'yes' if met else 'NO':>4s}")


if __name__ == "__main__":
    main()
