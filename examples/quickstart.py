"""Quickstart: the FlexFloat emulation library in five minutes.

Covers the scalar/array types, the operation statistics, arbitrary
formats, and the Session/Backend API: one :class:`repro.Session` owns
the arithmetic backend (exact ``reference`` oracle or the bit-identical
``fast`` numpy engine), the statistics scope, the tuning cache and the
virtual platform.

Run with::

    python examples/quickstart.py
"""

import numpy as np

from repro import Session
from repro.core import (
    BINARY8,
    BINARY16,
    BINARY16ALT,
    BINARY32,
    FlexFloat,
    FlexFloatArray,
    FormatMismatchError,
    FPFormat,
    collect,
    vectorizable,
)


def scalar_basics() -> None:
    print("== Scalar FlexFloat values ==")
    # Values are backed by doubles and sanitized to their format.
    x = FlexFloat(3.14159, BINARY16)
    y = FlexFloat(3.14159, BINARY8)
    print(f"pi in binary16  : {float(x)}  (bits 0x{x.bits:04x})")
    print(f"pi in binary8   : {float(y)}  (bits 0x{y.bits:02x})")

    # Arithmetic stays within the format: 1 + 2^-11 rounds back to 1.
    one = FlexFloat(1.0, BINARY16)
    eps = FlexFloat(2.0 ** -11, BINARY16)
    print(f"1 + 2^-11 in binary16 = {float(one + eps)}")

    # Mixing formats is a hard error, exactly like the C++ template.
    a = FlexFloat(1.0, BINARY16)
    b = FlexFloat(1.0, BINARY16ALT)
    try:
        a + b
    except FormatMismatchError as exc:
        print(f"mixing formats raises: {exc}")
    # ...unless you cast explicitly.
    print(f"with explicit cast: {float(a + b.cast(BINARY16))}")


def range_vs_precision() -> None:
    print("\n== Dynamic range vs precision (paper Fig. 1) ==")
    big = 1.0e6
    print(f"{big:g} in binary16    -> {float(FlexFloat(big, BINARY16))}"
          "  (saturates: 5-bit exponent)")
    print(f"{big:g} in binary16alt -> {float(FlexFloat(big, BINARY16ALT))}"
          "  (fits: 8-bit exponent)")
    fine = 1.2345
    print(f"{fine} in binary16    -> {float(FlexFloat(fine, BINARY16))}"
          "  (11 significant bits)")
    print(f"{fine} in binary16alt -> {float(FlexFloat(fine, BINARY16ALT))}"
          "  (8 significant bits)")


def arrays_and_statistics() -> None:
    print("\n== Arrays and operation statistics ==")
    signal = np.sin(np.linspace(0, 2 * np.pi, 16))
    a = FlexFloatArray(signal, BINARY8)
    with collect() as stats:
        with vectorizable():  # tag this region as SIMD-friendly
            energy = (a * a).sum()
    print(f"sum of squares in binary8: {float(energy):.3f} "
          f"(exact: {np.sum(signal * signal):.3f})")
    print(f"operations recorded: {stats.total_arith_ops()} "
          f"({stats.vector_fraction():.0%} in vectorizable regions)")


def custom_formats() -> None:
    print("\n== Arbitrary formats: flexfloat<e, m> ==")
    for e, m in [(4, 3), (6, 9), (7, 12)]:
        fmt = FPFormat(e, m)
        approx = FlexFloat(2.718281828, fmt)
        print(f"e={e} m={m:2d}: e^1 = {float(approx):.6f}, "
              f"max = {fmt.max_value:.3g}, eps = {fmt.machine_epsilon:.3g}")


def sessions_and_backends() -> None:
    print("\n== Sessions and backends ==")
    # A Session owns the execution state: arithmetic backend, statistics
    # scope, format environment, tuning cache, virtual platform.  The
    # "fast" backend uses precomputed per-format constants and fused
    # quantize-on-write kernels -- bit-identical to the exact reference
    # pipeline, several times faster on the array hot path.
    signal = np.sin(np.linspace(0, 2 * np.pi, 256))
    results = {}
    for backend in ("reference", "fast"):
        session = Session(backend=backend)
        with session, session.collect() as stats:
            a = FlexFloatArray(signal, BINARY16ALT)
            results[backend] = float((a * a).sum())
        print(f"{backend:10s} backend: sum of squares = "
              f"{results[backend]:.6f} ({stats.total_arith_ops()} ops)")
    print(f"bit-identical across backends: "
          f"{results['reference'] == results['fast']}")
    # Each session's statistics are isolated -- nothing leaks through
    # module globals, so concurrent experiments cannot contaminate
    # each other's operation counts.


if __name__ == "__main__":
    scalar_basics()
    range_vs_precision()
    arrays_and_statistics()
    custom_formats()
    sessions_and_backends()
