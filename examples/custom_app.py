"""Bring your own kernel: tune a FIR filter you define yourself.

Shows the full application contract: a numeric (FlexFloat) form for the
tuner and a kernel (mini-ISA) form for the virtual platform, in ~100
lines.  Anything implementing this pair plugs into the same Fig. 2 flow
as the six paper applications.

Run with::

    python examples/custom_app.py
"""

import numpy as np

from repro.apps.base import (
    TransprecisionApp,
    ensure_fmt,
    lanes_for,
    reduce_lanes,
    vcast,
    wider,
)
from repro.core import FlexFloatArray, vectorizable
from repro.flow import TransprecisionFlow
from repro.hardware import KernelBuilder
from repro.tuning import V2, VarSpec

TAPS = 8
LENGTH = 256


class FirApp(TransprecisionApp):
    """8-tap FIR filter over a noisy sensor trace."""

    name = "fir"
    num_inputs = 2

    def variables(self):
        return [
            VarSpec("signal", LENGTH, "input samples"),
            VarSpec("taps", TAPS, "filter coefficients"),
            VarSpec("out", LENGTH - TAPS + 1, "filtered output"),
        ]

    def _inputs(self, input_id):
        rng = np.random.default_rng(42 + input_id)
        t = np.linspace(0, 1, LENGTH)
        signal = np.sin(2 * np.pi * 5 * t) + 0.1 * rng.normal(size=LENGTH)
        taps = np.blackman(TAPS)
        taps /= taps.sum()
        return signal, taps

    # -- numeric form ---------------------------------------------------
    def run_numeric(self, binding, input_id=0):
        signal_np, taps_np = self._inputs(input_id)
        sig_fmt = binding["signal"]
        tap_fmt = binding["taps"]
        out_fmt = binding["out"]
        region = wider(wider(sig_fmt, tap_fmt), out_fmt)

        signal = FlexFloatArray(signal_np, sig_fmt)
        taps = FlexFloatArray(taps_np, tap_fmt)
        taps_r = taps if tap_fmt == region else taps.cast(region)
        n_out = LENGTH - TAPS + 1

        def body():
            acc = FlexFloatArray(np.zeros(n_out), region)
            sig_r = signal if sig_fmt == region else signal.cast(region)
            for t in range(TAPS):
                acc = acc + sig_r[t : t + n_out] * taps_r[t]
            return acc

        if lanes_for(region) > 1:
            with vectorizable():
                acc = body()
        else:
            acc = body()
        out = acc if out_fmt == region else acc.cast(out_fmt)
        return out.to_numpy()

    # -- kernel form ----------------------------------------------------
    def build_program(self, binding, input_id=0, vectorize=True):
        signal_np, taps_np = self._inputs(input_id)
        sig_fmt = binding["signal"]
        tap_fmt = binding["taps"]
        out_fmt = binding["out"]
        region = wider(wider(sig_fmt, tap_fmt), out_fmt)
        lanes = lanes_for(region) if vectorize else 1
        n_out = LENGTH - TAPS + 1

        b = KernelBuilder(self.name)
        signal = b.alloc("signal", signal_np, sig_fmt)
        taps = b.alloc("taps", taps_np, tap_fmt)
        out = b.zeros("out", n_out, out_fmt)

        tap_regs = []
        t = 0
        while t < TAPS:
            width = min(lanes, TAPS - t)
            if width > 1:
                v = b.load(taps, t, lanes=width)
                tap_regs += [
                    (r, width) for r in vcast(b, v, tap_fmt, region, width)
                ]
            else:
                v = b.load(taps, t)
                tap_regs.append((ensure_fmt(b, v, tap_fmt, region), 1))
            t += width

        for i in b.loop(n_out):
            acc = b.fconst(0.0, region)
            vacc, vl, pos = None, 1, 0
            for treg, width in tap_regs:
                if width > 1:
                    vs = b.load(signal, i + pos, lanes=width)
                    part = vcast(b, vs, sig_fmt, region, width)[0]
                    prod = b.fp("mul", region, part, treg, lanes=width)
                    if vacc is None:
                        vacc, vl = prod, width
                    else:
                        vacc = b.fp("add", region, vacc, prod, lanes=width)
                else:
                    s = b.load(signal, i + pos)
                    s = ensure_fmt(b, s, sig_fmt, region)
                    prod = b.fp("mul", region, s, treg)
                    acc = b.fp("add", region, acc, prod)
                pos += width
            if vacc is not None:
                acc = b.fp("add", region, acc,
                           reduce_lanes(b, vacc, region, vl))
            b.store(out, i, ensure_fmt(b, acc, region, out_fmt))
        return b.program()


def main() -> None:
    app = FirApp("small")
    print("Custom FIR app through the full transprecision flow:\n")
    for precision in (1e-1, 1e-2, 1e-3):
        flow = TransprecisionFlow(app, V2, precision, cache_dir=None)
        result = flow.run()
        binding = {k: v.name for k, v in result.binding.items()}
        print(f"precision {precision:g}: {binding}")
        print(f"  cycles {result.cycles_ratio:.2f}x   "
              f"memory {result.memory_ratio:.2f}x   "
              f"energy {result.energy_ratio:.2f}x vs binary32\n")


if __name__ == "__main__":
    main()
