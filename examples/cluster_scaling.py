"""Strong scaling on the multi-core transprecision cluster.

Sweeps a kernel over {1, 2, 4, 8} cores x {1:1, 1:2, 1:4} FPU sharing
and prints the efficiency table programmatically -- the same numbers
``python -m repro cluster`` derives for the tuned grid, here driven
straight through ``Session.cluster_platform`` on a binding of your
choosing.

Run with::

    python examples/cluster_scaling.py [app] [scale]
"""

import sys

from repro import Session
from repro.apps import make_app
from repro.core import BINARY16ALT
from repro.hardware import simulate_timing


def main() -> None:
    app_name = sys.argv[1] if len(sys.argv) > 1 else "conv"
    scale = sys.argv[2] if len(sys.argv) > 2 else "small"
    session = Session()
    app = make_app(app_name, scale)
    if not app.partitionable:
        raise SystemExit(
            f"{app_name} has no data-parallel partition; "
            "try conv, dwt, knn or jacobi"
        )

    # A 16-bit storage binding: narrow enough to vectorize, wide enough
    # to stay accurate -- swap in a tuned binding from a flow if you
    # want the paper-grade configuration.
    binding = {v.name: BINARY16ALT for v in app.variables()}

    # One strong-scaling baseline serves the whole topology sweep.
    serial_cycles = simulate_timing(
        app.build_program(binding).instrs
    ).cycles

    print(f"{app_name} ({scale} scale), all-binary16alt binding")
    print(f"{'sharing':>8s}", end="")
    core_counts = (1, 2, 4, 8)
    for cores in core_counts:
        print(f"  {cores:>2d} core{'s' if cores > 1 else ' '}     ", end="")
    print()

    with session:
        for fpu_ratio in (1, 2, 4):
            print(f"{'1:' + str(fpu_ratio):>8s}", end="")
            for cores in core_counts:
                platform = session.cluster_platform((cores, fpu_ratio))
                report = platform.run_app(
                    app, binding, serial_cycles=serial_cycles
                )
                print(
                    f"  {report.speedup:4.2f}x ({report.efficiency:4.0%})",
                    end="",
                )
            print()

    # One topology in detail: where do the cycles and the energy go?
    platform = session.cluster_platform((8, 4))
    with session:
        report = platform.run_app(
            app, binding, serial_cycles=serial_cycles
        )
    print(f"\n8 cores, 1:4 sharing ({report.config.n_fpus} FPU instances):")
    print(f"  makespan          {report.cycles} cycles "
          f"(serial {report.serial_cycles})")
    print(f"  contention stalls {report.contention_stalls}")
    print(f"  cluster energy    {report.energy_pj / 1e3:.1f} nJ "
          f"(FPU static {report.fpu_static_pj / 1e3:.1f} nJ)")
    per_core = ", ".join(str(r.cycles) for r in report.cores)
    print(f"  per-core cycles   {per_core}")


if __name__ == "__main__":
    main()
